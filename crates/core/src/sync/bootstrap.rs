//! Bootstrap synchronization (paper §4.1), re-anchorable at any trace
//! position.
//!
//! Examines one NTP-delimited second of every radio's trace — the first
//! second for a from-the-start replay ([`bootstrap`]), or a second starting
//! at any per-radio window position for a mid-trace replay
//! ([`bootstrap_at`]) — finds content-unique frames heard by multiple
//! radios (synchronization sets `Ek`), assembles a connected
//! synchronization graph `G` from as few large sets as possible, and
//! BFS-assigns each radio an offset `Tᵢ` such that `universal = local − Tᵢ`
//! agrees across radios to microseconds.
//!
//! The anchor-based coarse offset (`anchor_local − anchor_wall`, see
//! [`RadioMeta::coarse_offset_us`]) plays two roles: it roots each
//! connected component (so universal time stays near wall time wherever
//! the window sits), and it is the coarse seed that locates a mid-trace
//! window in each radio's local clock in the first place. It is accurate
//! to the NTP error (ms) plus oscillator drift since the anchor — the sync
//! sets then refine the *relative* offsets to microseconds, exactly as at
//! t = 0.
//!
//! Two deliberate fidelity points:
//! * radios on disjoint channels are bridged through monitors whose two
//!   radios share one hardware clock (the paper's cross-channel trick);
//! * when the graph is partitioned (the paper observes this with only 10
//!   pods), partitioned radios fall back to their millisecond-accurate NTP
//!   anchors and are flagged *coarse* rather than dropped.

use jigsaw_ieee80211::fc::{FrameControl, FrameType, Subtype};
use jigsaw_ieee80211::{Channel, Micros};
use jigsaw_trace::{PhyEvent, PhyStatus, RadioMeta};
// tidy:allow-file(hash-order): anchor sets are sorted by (Reverse(len), first element) before the sync graph is built
use std::collections::HashMap;

/// Bootstrap parameters.
#[derive(Debug, Clone)]
pub struct BootstrapConfig {
    /// Width of the bootstrap window after each trace's anchor (paper: 1 s).
    pub window_us: Micros,
    /// Minimum radios a set must span to be usable.
    pub min_set_size: usize,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        BootstrapConfig {
            window_us: 1_000_000,
            min_set_size: 2,
        }
    }
}

/// Errors from [`bootstrap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BootstrapError {
    /// No radios supplied.
    NoRadios,
    /// Metadata and prefix tables disagree in length.
    LengthMismatch,
}

impl std::fmt::Display for BootstrapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BootstrapError::NoRadios => write!(f, "no radios to synchronize"),
            BootstrapError::LengthMismatch => write!(f, "metas/prefixes length mismatch"),
        }
    }
}

impl std::error::Error for BootstrapError {}

/// The bootstrap result.
#[derive(Debug, Clone)]
pub struct BootstrapReport {
    /// Per-radio offset `Tᵢ` (µs): `universal = local − Tᵢ`.
    pub offsets: Vec<i64>,
    /// Radios that could only be NTP-anchored (partitioned from radio 0's
    /// component): accurate to milliseconds, not microseconds.
    pub coarse: Vec<bool>,
    /// Number of connected components in the synchronization graph
    /// (1 = fully unified, the healthy case).
    pub components: usize,
    /// Synchronization sets admitted into G.
    pub sets_used: usize,
    /// Candidate reference frames considered across all radios.
    pub candidates: usize,
}

/// Is this captured event usable as a bootstrap reference?
/// Content-unique, non-retry frames only: DATA (non-null) and
/// beacon/probe-response management frames (unique via their TSF field);
/// never control frames (identical contents) and never probe requests
/// (stations that zero their sequence numbers, per the paper).
fn is_reference_candidate(ev: &PhyEvent) -> bool {
    if ev.status != PhyStatus::Ok || ev.bytes.len() < 24 {
        return false;
    }
    let fc = match FrameControl::from_u16(u16::from_le_bytes([ev.bytes[0], ev.bytes[1]])) {
        Some(fc) => fc,
        None => return false,
    };
    if fc.flags.retry {
        return false;
    }
    match fc.subtype.frame_type() {
        FrameType::Control => false,
        FrameType::Data => fc.subtype == Subtype::Data && ev.wire_len > 28,
        FrameType::Management => {
            matches!(fc.subtype, Subtype::Beacon | Subtype::ProbeResp)
        }
    }
}

/// 64-bit FNV-1a over the captured bytes plus the on-air length and rate —
/// the content identity used to match instances across radios.
pub fn content_key(ev: &PhyEvent) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut feed = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    };
    for &b in ev.bytes.iter() {
        feed(b);
    }
    for b in ev.wire_len.to_le_bytes() {
        feed(b);
    }
    for b in ev.rate.centi_mbps().to_le_bytes() {
        feed(b);
    }
    h
}

struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            false
        } else {
            self.parent[ra] = rb;
            true
        }
    }
}

/// Runs bootstrap synchronization over the first-window prefixes of all
/// radio traces — the t = 0 case of [`bootstrap_at`], with every radio's
/// window starting at its NTP anchor. `prefixes[i]` must contain radio
/// `i`'s events with `ts_local` within `[anchor_local, anchor_local +
/// window]` (events outside the window are defensively skipped — but
/// callers such as the pipeline's prefix reader are expected to honor the
/// contract, since they also know which consumed events must still reach
/// the merger).
pub fn bootstrap<P: AsRef<[PhyEvent]>>(
    metas: &[RadioMeta],
    prefixes: &[P],
    cfg: &BootstrapConfig,
) -> Result<BootstrapReport, BootstrapError> {
    let window_lo: Vec<Micros> = metas.iter().map(|m| m.anchor_local_us).collect();
    bootstrap_at(metas, prefixes, &window_lo, cfg)
}

/// Runs bootstrap synchronization over an arbitrary window of every
/// radio's trace: `prefixes[i]` holds radio `i`'s events with `ts_local`
/// within `[window_lo[i], window_lo[i] + window]`. For a mid-trace replay,
/// `window_lo[i]` is the radio's coarse-local image of the requested
/// universal start ([`RadioMeta::coarse_local`]); offsets come out exactly
/// as at t = 0 — sync sets pin the relative offsets to microseconds,
/// components root at the anchor-based coarse offset — so the merger can
/// be (re-)seeded at any corpus timestamp.
pub fn bootstrap_at<P: AsRef<[PhyEvent]>>(
    metas: &[RadioMeta],
    prefixes: &[P],
    window_lo: &[Micros],
    cfg: &BootstrapConfig,
) -> Result<BootstrapReport, BootstrapError> {
    let n = metas.len();
    if n == 0 {
        return Err(BootstrapError::NoRadios);
    }
    if prefixes.len() != n || window_lo.len() != n {
        return Err(BootstrapError::LengthMismatch);
    }

    // 1. Collect candidate reference instances keyed by channel + content.
    //    Radios on different channels cannot hear the same transmission, so
    //    a cross-channel content coincidence must not become a (spurious)
    //    synchronization set — channels are bridged through shared monitor
    //    clocks below, never through content.
    let mut sets: HashMap<(Channel, u64), Vec<(usize, Micros)>> = HashMap::new();
    let mut candidates = 0usize;
    for (r, prefix) in prefixes.iter().enumerate() {
        let lo = window_lo[r];
        let hi = lo.saturating_add(cfg.window_us);
        for ev in prefix.as_ref() {
            if ev.ts_local < lo || ev.ts_local > hi {
                continue;
            }
            if !is_reference_candidate(ev) {
                continue;
            }
            candidates += 1;
            // The radio's tuned channel (not the per-event tag) is the
            // channel identity everywhere in this crate.
            let key = (metas[r].channel, content_key(ev));
            let entry = sets.entry(key).or_default();
            // At most one instance per radio per set.
            if !entry.iter().any(|&(rr, _)| rr == r) {
                entry.push((r, ev.ts_local));
            }
        }
    }

    // 2. Assemble G: monitor bridges first (two radios, one clock), then
    //    the largest sets that still merge components (Kruskal-style, which
    //    both maximizes overlap and minimizes the number of distinct
    //    reference frames, as §4.1 prescribes).
    let mut dsu = Dsu::new(n);
    // adjacency: edges (a, b, delta) with offset_b = offset_a + delta.
    let mut adj: Vec<Vec<(usize, i64)>> = vec![Vec::new(); n];
    let mut by_monitor: HashMap<u16, usize> = HashMap::new();
    for (r, m) in metas.iter().enumerate() {
        if let Some(&other) = by_monitor.get(&m.monitor.0) {
            let delta = metas[r].anchor_local_us as i64 - metas[other].anchor_local_us as i64;
            adj[other].push((r, delta));
            adj[r].push((other, -delta));
            dsu.union(other, r);
        } else {
            by_monitor.insert(m.monitor.0, r);
        }
    }

    let mut set_list: Vec<&Vec<(usize, Micros)>> = sets
        .values()
        .filter(|v| v.len() >= cfg.min_set_size)
        .collect();
    // Largest sets first; ties broken deterministically (HashMap iteration
    // order must never influence the synchronization graph).
    set_list.sort_by_key(|v| (std::cmp::Reverse(v.len()), v[0].0, v[0].1));

    let mut sets_used = 0usize;
    for set in set_list {
        let spans_new = set.windows(2).any(|w| dsu.find(w[0].0) != dsu.find(w[1].0));
        if !spans_new {
            continue;
        }
        sets_used += 1;
        let (r0, y0) = set[0];
        for &(ri, yi) in &set[1..] {
            let delta = yi as i64 - y0 as i64;
            adj[r0].push((ri, delta));
            adj[ri].push((r0, -delta));
            dsu.union(r0, ri);
        }
    }

    // 3. BFS offsets per component. Roots anchor to their NTP wall clock so
    //    universal time stays near wall time for diurnal annotation.
    let mut offsets: Vec<i64> = vec![0; n];
    let mut assigned = vec![false; n];
    let mut coarse = vec![false; n];
    let mut components = 0usize;
    for start in 0..n {
        if assigned[start] {
            continue;
        }
        components += 1;
        let root_offset = metas[start].anchor_local_us as i64 - metas[start].anchor_wall_us as i64;
        let is_coarse_component = components > 1;
        offsets[start] = root_offset;
        assigned[start] = true;
        coarse[start] = is_coarse_component;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &(v, delta) in &adj[u] {
                if assigned[v] {
                    continue;
                }
                offsets[v] = offsets[u] + delta;
                assigned[v] = true;
                coarse[v] = is_coarse_component;
                queue.push_back(v);
            }
        }
    }

    Ok(BootstrapReport {
        offsets,
        coarse,
        components,
        sets_used,
        candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_ieee80211::fc::FcFlags;
    use jigsaw_ieee80211::frame::{DataFrame, Frame};
    use jigsaw_ieee80211::wire::serialize_frame;
    use jigsaw_ieee80211::{Channel, MacAddr, PhyRate, SeqNum};
    use jigsaw_trace::{MonitorId, RadioId};

    fn meta(radio: u16, monitor: u16, chan: u8, anchor_local: u64) -> RadioMeta {
        RadioMeta {
            radio: RadioId(radio),
            monitor: MonitorId(monitor),
            channel: Channel::of(chan),
            anchor_wall_us: 1_000,
            anchor_local_us: anchor_local,
        }
    }

    fn data_frame_bytes(seq: u16) -> Vec<u8> {
        serialize_frame(&Frame::Data(DataFrame {
            duration: 44,
            addr1: MacAddr::local(1, 1),
            addr2: MacAddr::local(2, 2),
            addr3: MacAddr::local(3, 3),
            seq: SeqNum::new(seq),
            frag: 0,
            flags: FcFlags {
                to_ds: true,
                ..Default::default()
            },
            null: false,
            body: vec![seq as u8; 40],
        }))
    }

    fn ev(radio: u16, ts: u64, chan: u8, bytes: Vec<u8>) -> PhyEvent {
        let len = bytes.len() as u32;
        PhyEvent {
            radio: RadioId(radio),
            ts_local: ts,
            channel: Channel::of(chan),
            rate: PhyRate::R11,
            rssi_dbm: -55,
            status: PhyStatus::Ok,
            wire_len: len,
            bytes: bytes.into(),
        }
    }

    #[test]
    fn two_radios_direct_sync() {
        // Radio 0 offset 0; radio 1's clock reads +5000 µs when the same
        // frame arrives.
        let metas = vec![meta(0, 0, 1, 0), meta(1, 1, 1, 5_000)];
        let f = data_frame_bytes(1);
        let prefixes = vec![vec![ev(0, 100, 1, f.clone())], vec![ev(1, 5_100, 1, f)]];
        let rep = bootstrap(&metas, &prefixes, &BootstrapConfig::default()).unwrap();
        assert_eq!(rep.components, 1);
        // universal(0, 100) == universal(1, 5100):
        let u0 = 100i64 - rep.offsets[0];
        let u1 = 5_100i64 - rep.offsets[1];
        assert_eq!(u0, u1);
    }

    #[test]
    fn transitive_sync_through_middle_radio() {
        // r0 and r2 never share a frame; both share with r1.
        let metas = vec![
            meta(0, 0, 1, 0),
            meta(1, 1, 1, 10_000),
            meta(2, 2, 1, 50_000),
        ];
        let fa = data_frame_bytes(1);
        let fb = data_frame_bytes(2);
        let prefixes = vec![
            vec![ev(0, 100, 1, fa.clone())],
            vec![ev(1, 10_100, 1, fa), ev(1, 10_500, 1, fb.clone())],
            vec![ev(2, 50_500, 1, fb)],
        ];
        let rep = bootstrap(&metas, &prefixes, &BootstrapConfig::default()).unwrap();
        assert_eq!(rep.components, 1);
        let u0 = 100i64 - rep.offsets[0];
        let u1a = 10_100i64 - rep.offsets[1];
        let u1b = 10_500i64 - rep.offsets[1];
        let u2 = 50_500i64 - rep.offsets[2];
        assert_eq!(u0, u1a);
        assert_eq!(u1b, u2);
        assert!(!rep.coarse.iter().any(|&c| c));
    }

    #[test]
    fn cross_channel_bridge_via_shared_monitor_clock() {
        // r0 (ch1) and r3 (ch6) share no frames; r1 (ch1) and r2 (ch6)
        // belong to the same monitor → same clock bridges the channels.
        let metas = vec![
            meta(0, 0, 1, 0),
            meta(1, 1, 1, 7_000),
            meta(2, 1, 6, 7_000), // same monitor as r1
            meta(3, 2, 6, 90_000),
        ];
        let fa = data_frame_bytes(1); // ch1 frame heard by r0, r1
        let fb = data_frame_bytes(2); // ch6 frame heard by r2, r3
        let prefixes = vec![
            vec![ev(0, 200, 1, fa.clone())],
            vec![ev(1, 7_200, 1, fa)],
            vec![ev(2, 7_900, 6, fb.clone())],
            vec![ev(3, 90_900, 6, fb)],
        ];
        let rep = bootstrap(&metas, &prefixes, &BootstrapConfig::default()).unwrap();
        assert_eq!(rep.components, 1, "bridge failed");
        let u0 = 200i64 - rep.offsets[0];
        let u3 = 90_900i64 - rep.offsets[3];
        // fa at universal u0; fb is 700 µs later on the shared clock.
        assert_eq!(u3 - u0, 700);
    }

    #[test]
    fn identical_content_across_channels_is_not_a_sync_set() {
        // r0 (ch1) and r1 (ch6) log byte-identical data frames — a content
        // coincidence, not a shared reception: radios on disjoint channels
        // cannot hear the same transmission. No sync set may form.
        let metas = vec![meta(0, 0, 1, 0), meta(1, 1, 6, 0)];
        let f = data_frame_bytes(1);
        let prefixes = vec![vec![ev(0, 100, 1, f.clone())], vec![ev(1, 40_000, 6, f)]];
        let rep = bootstrap(&metas, &prefixes, &BootstrapConfig::default()).unwrap();
        assert_eq!(rep.components, 2, "spurious cross-channel sync set");
        assert_eq!(rep.sets_used, 0);
    }

    #[test]
    fn partition_falls_back_to_ntp() {
        let mut m0 = meta(0, 0, 1, 1_000_000);
        let mut m1 = meta(1, 1, 1, 9_000_000);
        m0.anchor_wall_us = 500; // NTP said wall=500 at local 1 000 000
        m1.anchor_wall_us = 700;
        let metas = vec![m0, m1];
        // No shared frames at all.
        let prefixes = vec![
            vec![ev(0, 1_000_100, 1, data_frame_bytes(1))],
            vec![ev(1, 9_000_100, 1, data_frame_bytes(2))],
        ];
        let rep = bootstrap(&metas, &prefixes, &BootstrapConfig::default()).unwrap();
        assert_eq!(rep.components, 2);
        assert!(!rep.coarse[0]);
        assert!(rep.coarse[1]);
        // NTP anchoring: universal ≈ wall for each.
        assert_eq!(1_000_100 - rep.offsets[0], 600);
        assert_eq!(9_000_100 - rep.offsets[1], 800);
    }

    #[test]
    fn retries_and_acks_rejected_as_references() {
        // Build a retry frame directly (the retry bit changes the FCS).
        let f = Frame::Data(DataFrame {
            duration: 44,
            addr1: MacAddr::local(1, 1),
            addr2: MacAddr::local(2, 2),
            addr3: MacAddr::local(3, 3),
            seq: SeqNum::new(9),
            frag: 0,
            flags: FcFlags {
                retry: true,
                ..Default::default()
            },
            null: false,
            body: vec![1; 40],
        });
        let retry = serialize_frame(&f);
        let e = ev(0, 10, 1, retry);
        assert!(!is_reference_candidate(&e));

        let ack = serialize_frame(&Frame::Ack {
            duration: 0,
            ra: MacAddr::local(1, 1),
        });
        let e2 = ev(0, 10, 1, ack);
        assert!(!is_reference_candidate(&e2));

        let ok = ev(0, 10, 1, data_frame_bytes(1));
        assert!(is_reference_candidate(&ok));
    }

    #[test]
    fn corrupt_events_ignored() {
        let mut e = ev(0, 10, 1, data_frame_bytes(1));
        e.status = PhyStatus::FcsError;
        assert!(!is_reference_candidate(&e));
    }

    #[test]
    fn events_outside_window_ignored() {
        let metas = vec![meta(0, 0, 1, 0), meta(1, 1, 1, 0)];
        let f = data_frame_bytes(1);
        // Radio 1's instance is 2 s past its anchor: outside the window.
        let prefixes = vec![vec![ev(0, 100, 1, f.clone())], vec![ev(1, 2_000_100, 1, f)]];
        let rep = bootstrap(&metas, &prefixes, &BootstrapConfig::default()).unwrap();
        assert_eq!(rep.components, 2);
    }

    #[test]
    fn empty_input_errors() {
        assert_eq!(
            bootstrap::<Vec<PhyEvent>>(&[], &[], &BootstrapConfig::default()).unwrap_err(),
            BootstrapError::NoRadios
        );
        assert_eq!(
            bootstrap_at(
                &[meta(0, 0, 1, 0)],
                &[vec![ev(0, 1, 1, data_frame_bytes(1))]],
                &[],
                &BootstrapConfig::default()
            )
            .unwrap_err(),
            BootstrapError::LengthMismatch
        );
    }

    /// Mid-trace re-anchoring: the same sync-set machinery runs over a
    /// window hours into the trace, with the window located per radio and
    /// the offsets reflecting the clocks *at that time* (radio 1 has
    /// drifted +300 µs since t = 0 — a from-the-start bootstrap could not
    /// know that).
    #[test]
    fn bootstrap_at_mid_trace_window() {
        let hour = 3_600_000_000u64;
        let metas = vec![meta(0, 0, 1, 0), meta(1, 1, 1, 5_000)];
        let f = data_frame_bytes(1);
        let drift = 300u64; // radio 1 gained 300 µs by the window
        let prefixes = vec![
            vec![ev(0, hour + 100, 1, f.clone())],
            vec![ev(1, hour + 5_000 + drift + 100, 1, f)],
        ];
        let window_lo = vec![hour, hour + 5_000 + drift];
        let rep = bootstrap_at(&metas, &prefixes, &window_lo, &BootstrapConfig::default()).unwrap();
        assert_eq!(rep.components, 1);
        let u0 = (hour + 100) as i64 - rep.offsets[0];
        let u1 = (hour + 5_000 + drift + 100) as i64 - rep.offsets[1];
        assert_eq!(u0, u1, "mid-trace offsets must absorb the drift");

        // The same events are invisible to a t=0 bootstrap: its window
        // closed an hour ago.
        let rep0 = bootstrap(&metas, &prefixes, &BootstrapConfig::default()).unwrap();
        assert_eq!(rep0.candidates, 0);
        assert_eq!(rep0.components, 2);
    }
}
