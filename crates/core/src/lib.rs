//! # jigsaw-core
//!
//! The Jigsaw system itself (SIGCOMM 2006): merging hundreds of passive
//! per-radio traces into one globally synchronized view, then reconstructing
//! link-layer and transport-layer conversations from it.
//!
//! The crate mirrors the paper's architecture:
//!
//! * [`mod@sync::bootstrap`] — **bootstrap synchronization** (§4.1): find
//!   content-unique reference frames heard by multiple radios in the first
//!   (NTP-delimited) second of each trace, build overlapping synchronization
//!   sets, and BFS a consistent per-radio clock offset, bridging channels
//!   through monitors whose two radios share a single clock;
//! * [`sync::clock`] — per-radio clock state during merging: offset, skew,
//!   and an EWMA drift predictor, continuously corrected by unification
//!   (§4.2 "clock adjustment" / "managing skew and drift");
//! * [`unify`] — **frame unification** (§4.2): a single priority queue over
//!   all radio cursors, a search window, content comparison with
//!   short-circuit, transmitter-address matching for corrupted instances,
//!   median timestamps, group dispersion, and opportunistic
//!   resynchronization on every unique frame;
//! * [`link`] — **link-layer reconstruction** (§5.1): jframes → transmission
//!   attempts (CTS-to-self + DATA + ACK, paired via the Duration field) →
//!   frame exchanges (retry coalescing by sequence-number delta, the
//!   R1–R4 rules, inference for missing frames);
//! * [`transport`] — **transport reconstruction** (§5.2): TCP flow
//!   reassembly, covering-ACK delivery oracle, monitor-omission inference,
//!   and wireless/wired loss attribution;
//! * [`shard`] — **channel-sharded parallel unification**: radios tuned to
//!   different channels never share a jframe, so the merge partitions by
//!   channel, runs one `Merger` per shard on its own thread, and K-way
//!   merges the results back into the serial emission order;
//! * [`pipeline`] — the single-pass streaming driver tying it together
//!   (requirement 3 of §4: faster than real time, one pass), with
//!   [`pipeline::Pipeline::run_parallel`] as the sharded variant; its
//!   [`pipeline::EventSource`] abstraction feeds the same drivers from
//!   in-memory streams or from an on-disk trace corpus
//!   ([`pipeline::CorpusSource`]) with window-bounded memory;
//! * [`observer`] — the pipeline→analysis boundary: every driver takes
//!   one [`observer::PipelineObserver`] with default-no-op hooks for
//!   jframes, attempts, exchanges, and flows; closures lift in via the
//!   `On*` adapters and tuples fan one pass out to several analyses;
//! * [`baseline`] — the comparison mergers the benchmarks run against:
//!   a `mergecap`-style local-timestamp merge and a Yeo-style
//!   beacon-reference synchronizer without skew management.

pub mod baseline;
pub mod jframe;
pub mod link;
pub mod observer;
pub mod pipeline;
pub mod shard;
pub mod sync;
pub mod transport;
pub mod unify;

pub use jframe::{Instance, Instances, JFrame};
pub use observer::{OnAttempt, OnExchange, OnFlows, OnJFrame, PipelineObserver};
pub use pipeline::{
    CorpusSource, EventSource, Pipeline, PipelineConfig, PipelineReport, Reconstruction,
};
pub use shard::ShardConfig;
pub use unify::{MergeConfig, Merger};
