//! The jframe: one physical transmission, unified from every radio that
//! heard it (paper §4.2).

use jigsaw_ieee80211::frame::Frame;
use jigsaw_ieee80211::wire::parse_frame;
use jigsaw_ieee80211::{Channel, Micros, PhyRate};
use jigsaw_trace::{Payload, PhyStatus, RadioId};

/// One radio's reception of the transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instance {
    /// The radio that heard it.
    pub radio: RadioId,
    /// Raw local timestamp from the trace.
    pub ts_local: Micros,
    /// The instance's timestamp translated to universal time at the moment
    /// of unification.
    pub ts_universal: Micros,
    /// Reported signal strength.
    pub rssi_dbm: i16,
    /// Decode quality at this radio.
    pub status: PhyStatus,
}

/// How many instances fit inline before [`Instances`] spills to the heap.
/// The paper's trace averages 2.97 receptions per transmission, so four
/// inline slots cover the common case without a per-jframe allocation.
const INLINE_INSTANCES: usize = 4;

const INSTANCE_FILL: Instance = Instance {
    radio: RadioId(0),
    ts_local: 0,
    ts_universal: 0,
    rssi_dbm: 0,
    status: PhyStatus::Ok,
};

#[derive(Clone)]
enum InstancesRepr {
    Inline {
        len: u8,
        buf: [Instance; INLINE_INSTANCES],
    },
    Heap(Vec<Instance>),
}

/// The instance list of a jframe: a small vector that stores up to four
/// receptions inline (`INLINE_INSTANCES`) and spills to the heap beyond
/// that. Derefs to `[Instance]`, so iteration, indexing, `len()`, `swap()`
/// and friends all read through; collect with `FromIterator` or build
/// incrementally with [`Instances::push`]. Equality and `Debug` are
/// slice-based — inline and spilled lists with the same contents compare
/// equal, so no byte-identity contract can observe the representation.
#[derive(Clone)]
pub struct Instances(InstancesRepr);

impl Instances {
    /// An empty list (inline, no allocation).
    pub const fn new() -> Self {
        Instances(InstancesRepr::Inline {
            len: 0,
            buf: [INSTANCE_FILL; INLINE_INSTANCES],
        })
    }

    /// A single-reception list (inline, no allocation) — the singleton
    /// jframe's hot path.
    pub fn one(inst: Instance) -> Self {
        let mut s = Self::new();
        s.push(inst);
        s
    }

    /// Appends a reception, spilling to the heap past the inline capacity.
    pub fn push(&mut self, inst: Instance) {
        match &mut self.0 {
            InstancesRepr::Inline { len, buf } => {
                let n = *len as usize;
                if n < INLINE_INSTANCES {
                    buf[n] = inst;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_INSTANCES * 2);
                    v.extend_from_slice(&buf[..]);
                    v.push(inst);
                    self.0 = InstancesRepr::Heap(v);
                }
            }
            InstancesRepr::Heap(v) => v.push(inst),
        }
    }

    /// True when the list lives in the heap-spilled representation.
    #[cfg(test)]
    fn is_spilled(&self) -> bool {
        matches!(self.0, InstancesRepr::Heap(_))
    }
}

impl Default for Instances {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for Instances {
    type Target = [Instance];
    fn deref(&self) -> &[Instance] {
        match &self.0 {
            InstancesRepr::Inline { len, buf } => &buf[..*len as usize],
            InstancesRepr::Heap(v) => v,
        }
    }
}

impl std::ops::DerefMut for Instances {
    fn deref_mut(&mut self) -> &mut [Instance] {
        match &mut self.0 {
            InstancesRepr::Inline { len, buf } => &mut buf[..*len as usize],
            InstancesRepr::Heap(v) => v,
        }
    }
}

impl std::fmt::Debug for Instances {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl PartialEq for Instances {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Instances {}

impl FromIterator<Instance> for Instances {
    fn from_iter<I: IntoIterator<Item = Instance>>(iter: I) -> Self {
        let mut s = Self::new();
        for inst in iter {
            s.push(inst);
        }
        s
    }
}

impl From<Vec<Instance>> for Instances {
    fn from(v: Vec<Instance>) -> Self {
        if v.len() <= INLINE_INSTANCES {
            v.into_iter().collect()
        } else {
            Instances(InstancesRepr::Heap(v))
        }
    }
}

impl<'a> IntoIterator for &'a Instances {
    type Item = &'a Instance;
    type IntoIter = std::slice::Iter<'a, Instance>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A unified frame: the synchronized record of one on-air transmission.
#[derive(Debug, Clone)]
pub struct JFrame {
    /// Universal timestamp: the median of the instances' adjusted
    /// timestamps (µs). Refers to the end of the PLCP header, which is when
    /// monitor hardware timestamps receptions.
    pub ts: Micros,
    /// Frame contents from the best (FCS-valid, longest) instance,
    /// possibly snap-truncated. Empty for pure PHY-error events. A
    /// [`Payload`] handle — cloned from the winning instance's event
    /// without copying the bytes (digests and parsing read through deref,
    /// so every byte-identity contract is unchanged).
    pub bytes: Payload,
    /// True on-air length in bytes.
    pub wire_len: u32,
    /// PLCP rate.
    pub rate: PhyRate,
    /// The channel the transmission was captured on. Every instance comes
    /// from a radio tuned to this channel: radios on other channels cannot
    /// hear the same transmission, so unification never crosses channels
    /// (and the channel-sharded merge exploits exactly that).
    pub channel: Channel,
    /// Every reception that was unified into this jframe. Stored inline
    /// (no allocation) up to four receptions; see [`Instances`].
    pub instances: Instances,
    /// Worst-case time offset between any two instances (µs) — the paper's
    /// *group dispersion* (Figure 4 plots its CDF).
    pub dispersion: Micros,
    /// True if at least one instance decoded with a valid FCS.
    pub valid: bool,
    /// True if this frame was usable as a synchronization reference
    /// (content-unique, non-retry).
    pub unique: bool,
}

impl JFrame {
    /// Number of instances (the paper's trace averages 2.97).
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Parses the frame contents (FCS-valid instances only).
    ///
    /// Returns `None` for error-only jframes or undecodable contents.
    /// Snap-truncated frames fail the FCS check by construction, so complete
    /// capture is required — analyses that only need headers use
    /// [`JFrame::peek`] instead.
    pub fn parse(&self) -> Option<Frame> {
        if !self.valid || self.bytes.is_empty() {
            return None;
        }
        parse_frame(&self.bytes).ok()
    }

    /// Best-effort `(subtype, transmitter)` even for corrupt/snapped frames.
    pub fn peek(&self) -> Option<(jigsaw_ieee80211::Subtype, Option<jigsaw_ieee80211::MacAddr>)> {
        jigsaw_ieee80211::wire::peek_transmitter(&self.bytes)
    }

    /// True when the full frame body was captured (no snap truncation).
    pub fn is_complete(&self) -> bool {
        self.bytes.len() as u32 == self.wire_len
    }

    /// The airtime of the MAC payload portion (everything after the PLCP),
    /// used to place the end of the transmission on the universal timeline.
    pub fn payload_airtime_us(&self) -> Micros {
        use jigsaw_ieee80211::timing::{airtime_us, Preamble};
        let full = airtime_us(self.rate, self.wire_len as usize, Preamble::Long);
        let plcp = match self.rate.modulation() {
            jigsaw_ieee80211::Modulation::Ofdm => jigsaw_ieee80211::timing::OFDM_PLCP_US,
            _ => jigsaw_ieee80211::timing::DSSS_LONG_PLCP_US,
        };
        full.saturating_sub(plcp)
    }

    /// Universal time at which the transmission left the air.
    pub fn end_ts(&self) -> Micros {
        self.ts + self.payload_airtime_us()
    }

    /// Folds every observable field of the jframe (and its instances) into
    /// a running digest, field-framed so no two distinct streams collide by
    /// concatenation. Folding a whole jframe stream yields the stream
    /// digest `repro merge --verify` compares across disk-backed and
    /// in-memory runs (count + order + content).
    pub fn digest_into(&self, h: &mut jigsaw_trace::digest::Fnv64) {
        h.update_u64(self.ts);
        h.update(&[self.channel.number(), self.valid as u8, self.unique as u8]);
        h.update_u64(u64::from(self.wire_len));
        h.update_u64(u64::from(self.rate.centi_mbps()));
        h.update_u64(self.dispersion);
        h.update_u64(self.bytes.len() as u64);
        h.update(&self.bytes);
        h.update_u64(self.instances.len() as u64);
        for i in &self.instances {
            h.update_u64(u64::from(i.radio.0));
            h.update_u64(i.ts_local);
            h.update_u64(i.ts_universal);
            h.update_u64(i.rssi_dbm as u64);
            h.update(&[i.status.code()]);
        }
    }

    /// The jframe's *clock-invariant* identity: a digest over everything
    /// the capture hardware recorded — channel, contents, wire length,
    /// rate, validity, and each instance's (radio, local timestamp, RSSI,
    /// status) — and nothing derived from merge-time clock state (`ts`,
    /// `ts_universal`, `dispersion` are all excluded).
    ///
    /// This is the identity the windowed-replay contract compares on: a
    /// replay re-anchored mid-trace reconstructs the same *groupings* as a
    /// full replay, but its universal timeline is re-derived from the NTP
    /// anchors at the window and so agrees with the full run's only to the
    /// re-anchor tolerance (NTP error + drift). Equal `stable_digest`
    /// multisets mean the two replays unified identically.
    ///
    /// Instances fold in canonical `(radio, ts_local)` order, not vector
    /// order: within a jframe, instances sit in merged-universal-time
    /// order, and two instances a microsecond apart can legitimately swap
    /// when the timeline is re-derived.
    pub fn stable_digest(&self) -> u64 {
        let mut h = jigsaw_trace::digest::Fnv64::new();
        h.update(&[self.channel.number(), self.valid as u8, self.unique as u8]);
        h.update_u64(u64::from(self.wire_len));
        h.update_u64(u64::from(self.rate.centi_mbps()));
        h.update_u64(self.bytes.len() as u64);
        h.update(&self.bytes);
        h.update_u64(self.instances.len() as u64);
        let mut order: Vec<usize> = (0..self.instances.len()).collect();
        order.sort_by_key(|&k| (self.instances[k].radio, self.instances[k].ts_local));
        for k in order {
            let i = &self.instances[k];
            h.update_u64(u64::from(i.radio.0));
            h.update_u64(i.ts_local);
            h.update_u64(i.rssi_dbm as u64);
            h.update(&[i.status.code()]);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_ieee80211::frame::Frame;
    use jigsaw_ieee80211::wire::serialize_frame;
    use jigsaw_ieee80211::MacAddr;

    fn jf(bytes: Vec<u8>, wire_len: u32, valid: bool) -> JFrame {
        JFrame {
            ts: 1000,
            bytes: bytes.into(),
            wire_len,
            rate: PhyRate::R11,
            channel: Channel::of(1),
            instances: Instances::new(),
            dispersion: 0,
            valid,
            unique: false,
        }
    }

    #[test]
    fn parse_roundtrip() {
        let ack = Frame::Ack {
            duration: 0,
            ra: MacAddr::local(1, 1),
        };
        let bytes = serialize_frame(&ack);
        let len = bytes.len() as u32;
        let j = jf(bytes, len, true);
        assert!(j.is_complete());
        assert_eq!(j.parse(), Some(ack));
    }

    #[test]
    fn invalid_jframe_does_not_parse() {
        let j = jf(vec![1, 2, 3], 3, false);
        assert_eq!(j.parse(), None);
        let j2 = jf(vec![], 0, true);
        assert_eq!(j2.parse(), None);
    }

    #[test]
    fn end_ts_accounts_for_airtime() {
        // 14-byte ACK at 11 Mbps: payload is ceil(112*10/110)=11 µs.
        let j = jf(vec![0; 14], 14, true);
        assert_eq!(j.end_ts(), 1000 + 11);
    }

    #[test]
    fn digest_is_field_sensitive() {
        use jigsaw_trace::digest::Fnv64;
        let base = jf(vec![1, 2, 3], 3, true);
        let hash = |j: &JFrame| {
            let mut h = Fnv64::new();
            j.digest_into(&mut h);
            h.finish()
        };
        assert_eq!(hash(&base), hash(&base.clone()), "digest must be stable");
        let mut ts = base.clone();
        ts.ts += 1;
        assert_ne!(hash(&base), hash(&ts));
        let mut inst = base.clone();
        inst.instances.push(Instance {
            radio: RadioId(4),
            ts_local: 9,
            ts_universal: 1001,
            rssi_dbm: -40,
            status: PhyStatus::Ok,
        });
        assert_ne!(hash(&base), hash(&inst));
        // Order matters: folding A then B differs from B then A.
        let mut ab = Fnv64::new();
        base.digest_into(&mut ab);
        ts.digest_into(&mut ab);
        let mut ba = Fnv64::new();
        ts.digest_into(&mut ba);
        base.digest_into(&mut ba);
        assert_ne!(ab.finish(), ba.finish());
    }

    #[test]
    fn stable_digest_ignores_clock_state_only() {
        let mut base = jf(vec![1, 2, 3], 3, true);
        base.instances.push(Instance {
            radio: RadioId(4),
            ts_local: 9,
            ts_universal: 1001,
            rssi_dbm: -40,
            status: PhyStatus::Ok,
        });
        let d = base.stable_digest();
        // Clock-derived fields do not move the stable digest...
        let mut clocky = base.clone();
        clocky.ts += 5;
        clocky.dispersion += 2;
        clocky.instances[0].ts_universal += 5;
        assert_eq!(d, clocky.stable_digest());
        // ...nor does in-frame instance order (it is universal-time order,
        // which a re-derived timeline may legitimately permute).
        let mut second = base.clone();
        second.instances.push(Instance {
            radio: RadioId(2),
            ts_local: 8,
            ts_universal: 1000,
            rssi_dbm: -45,
            status: PhyStatus::Ok,
        });
        let mut swapped = second.clone();
        swapped.instances.swap(0, 1);
        assert_eq!(second.stable_digest(), swapped.stable_digest());
        // ...but every capture-side field does.
        let mut content = base.clone();
        let mut flipped = content.bytes.to_vec();
        flipped[0] ^= 1;
        content.bytes = flipped.into();
        assert_ne!(d, content.stable_digest());
        let mut local = base.clone();
        local.instances[0].ts_local += 1;
        assert_ne!(d, local.stable_digest());
        let mut chan = base.clone();
        chan.channel = Channel::of(6);
        assert_ne!(d, chan.stable_digest());
    }

    #[test]
    fn instances_inline_until_spill() {
        let inst = |r: u16| Instance {
            radio: RadioId(r),
            ts_local: u64::from(r),
            ts_universal: u64::from(r),
            rssi_dbm: -50,
            status: PhyStatus::Ok,
        };
        let mut v = Instances::new();
        assert!(v.is_empty());
        for r in 0..4 {
            v.push(inst(r));
            assert!(!v.is_spilled(), "≤{INLINE_INSTANCES} stays inline");
        }
        assert_eq!(v.len(), 4);
        v.push(inst(4));
        assert!(v.is_spilled(), "fifth reception spills to the heap");
        assert_eq!(v.len(), 5);
        // Order survives the spill, and slice ops read through.
        assert_eq!(
            v.iter().map(|i| i.radio.0).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4]
        );
        v.swap(0, 4);
        assert_eq!(v[0].radio, RadioId(4));
    }

    #[test]
    fn instances_construction_paths_agree() {
        let inst = |r: u16| Instance {
            radio: RadioId(r),
            ts_local: 1,
            ts_universal: 1,
            rssi_dbm: -50,
            status: PhyStatus::Ok,
        };
        // Short lists normalize to the inline representation no matter how
        // they were built, so equality/Debug can't observe construction.
        let collected: Instances = (0..3).map(inst).collect();
        let converted: Instances = (0..3).map(inst).collect::<Vec<_>>().into();
        assert!(!collected.is_spilled() && !converted.is_spilled());
        assert_eq!(collected, converted);
        assert_eq!(format!("{collected:?}"), format!("{converted:?}"));
        assert_eq!(Instances::one(inst(0)).len(), 1);
        // Long lists agree too, whichever path spilled them.
        let pushed: Instances = (0..6).map(inst).collect();
        let long: Instances = (0..6).map(inst).collect::<Vec<_>>().into();
        assert!(pushed.is_spilled() && long.is_spilled());
        assert_eq!(pushed, long);
    }

    #[test]
    fn peek_works_on_truncated() {
        let data = Frame::Data(jigsaw_ieee80211::frame::DataFrame {
            duration: 44,
            addr1: MacAddr::local(1, 1),
            addr2: MacAddr::local(2, 2),
            addr3: MacAddr::local(3, 3),
            seq: jigsaw_ieee80211::SeqNum::new(5),
            frag: 0,
            flags: Default::default(),
            null: false,
            body: vec![0; 500],
        });
        let bytes = serialize_frame(&data);
        let mut j = jf(bytes[..40].to_vec(), bytes.len() as u32, false);
        j.rate = PhyRate::R54;
        assert!(!j.is_complete());
        let (st, ta) = j.peek().unwrap();
        assert_eq!(st, jigsaw_ieee80211::Subtype::Data);
        assert_eq!(ta, Some(MacAddr::local(2, 2)));
    }
}
