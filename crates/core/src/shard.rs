//! Channel-sharded parallel unification.
//!
//! The serial [`Merger`] is the pipeline's bottleneck
//! by construction: one priority queue serializes every radio, even though
//! radios tuned to different channels can never capture the same
//! transmission and therefore never contribute instances to the same
//! jframe. Enterprise deployments pair radios on the orthogonal channels
//! 1/6/11 (the paper's pods do exactly this), so the merge decomposes
//! perfectly by channel:
//!
//! 1. **Partition** the per-radio streams by [`jigsaw_trace::RadioMeta::channel`]
//!    (`jigsaw_trace::stream::partition_by_channel`), carrying each radio's
//!    bootstrap offset and seed prefix along with its stream.
//! 2. **Merge per shard**: each shard — one or more whole channels — runs
//!    an ordinary `Merger` on its own `std::thread`, streaming jframes out
//!    through a *bounded* mpsc channel in small batches. The bound gives
//!    backpressure: a fast shard blocks rather than buffering unbounded
//!    output while a slow shard catches up.
//! 3. **K-way merge** the per-shard jframe streams back into one stream
//!    ordered by `(ts, channel, emission order)` — exactly the order the
//!    serial merger emits, so downstream stages (attempt/exchange/transport
//!    reconstruction) are byte-for-byte oblivious to the parallelism.
//!
//! # Equivalence with the serial merger
//!
//! Unification never crosses channels (grouping is keyed by the radio's
//! tuned [`jigsaw_trace::RadioMeta::channel`] — the very key `partition_by_channel`
//! shards by, so the two layers can never disagree; see [`crate::unify`]),
//! clock corrections only ever touch radios inside the
//! group that triggered them, and each shard keeps its radios in the same
//! relative order they had in the full stream table — so every shard forms
//! exactly the groups the serial merger would form, applies the same
//! corrections in the same per-channel order, and emits the same jframes.
//! The K-way merge restores the serial total order. A property test
//! (`crates/core/tests/merge_properties.rs`) and the `repro smoke`
//! serial-vs-parallel equivalence check in CI pin this down.
//!
//! # Degenerate cases
//!
//! * **Single channel** (or `max_threads = 1`): everything lands in one
//!   shard, which runs the serial `Merger` inline on the caller's thread —
//!   no threads, no channels, no behavioral difference from
//!   [`Merger::run`]. Sharding is free to enable unconditionally.
//! * **More channels than threads**: channels are assigned round-robin to
//!   shards; a multi-channel shard is still correct because the `Merger`
//!   itself is channel-aware.
//!
//! Per-shard NUMA/affinity placement is an open experiment (see
//! `ROADMAP.md`): shards share nothing but the output channel, so pinning
//! them to cores/nodes is straightforward.

use crate::jframe::JFrame;
use crate::unify::{MergeConfig, MergeStats, Merger};
use jigsaw_trace::format::FormatError;
use jigsaw_trace::stream::{partition_by_channel, EventStream};
use jigsaw_trace::PhyEvent;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

/// Knobs for the channel-sharded merge.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Maximum merge threads (= shards). `0` means one shard per distinct
    /// channel, capped at the machine's available parallelism. `1` forces
    /// the serial inline path.
    pub max_threads: usize,
    /// Jframes per mpsc message: amortizes channel synchronization without
    /// adding meaningful latency (jframes are merged, not displayed).
    pub batch: usize,
    /// Bounded queue depth per shard, in batches — the backpressure window.
    /// Together with `batch` this is the knob bounding cross-thread
    /// buffering: at most `batch × (queue_batches + 2)` jframes per shard
    /// are in flight (queue + one being filled + one being drained),
    /// independent of how long the input traces are. Per-shard *merger*
    /// residency is tracked separately in
    /// [`MergeStats::peak_buffered`](crate::unify::MergeStats).
    pub queue_batches: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            max_threads: 0,
            batch: 64,
            queue_batches: 8,
        }
    }
}

impl ShardConfig {
    /// Number of shards to run for `distinct_channels` channels.
    pub fn shards_for(&self, distinct_channels: usize) -> usize {
        let cap = if self.max_threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.max_threads
        };
        distinct_channels.min(cap).max(1)
    }
}

/// Runs the channel-sharded merge to completion, streaming the globally
/// ordered jframes to `sink` on the calling thread.
///
/// `offsets[i]`, `seeds[i]` and `clock_refs[i]` belong to `streams[i]`
/// (the same contract as [`Merger::new_at`] + [`Merger::seed_pending`]);
/// pass an empty `seeds` when no bootstrap prefix needs re-injecting and
/// an empty `clock_refs` for clocks referenced at local time 0. Returns
/// the summed [`MergeStats`] of every shard.
pub fn run_sharded<S>(
    streams: Vec<S>,
    offsets: &[i64],
    mut seeds: Vec<Vec<PhyEvent>>,
    clock_refs: &[u64],
    merge_cfg: &MergeConfig,
    cfg: &ShardConfig,
    mut sink: impl FnMut(JFrame),
) -> Result<MergeStats, FormatError>
where
    S: EventStream + Send + 'static,
{
    assert_eq!(streams.len(), offsets.len(), "one offset per stream");
    if seeds.is_empty() {
        seeds = streams.iter().map(|_| Vec::new()).collect();
    }
    assert_eq!(streams.len(), seeds.len(), "one seed prefix per stream");
    assert!(
        clock_refs.is_empty() || clock_refs.len() == streams.len(),
        "one clock reference per stream (or none)"
    );
    if streams.is_empty() {
        return Ok(MergeStats::default());
    }

    let groups = partition_by_channel(streams);
    let n_shards = cfg.shards_for(groups.len());

    // Channels round-robin onto shards; members keep their original
    // relative order (equal-timestamp tie-breaking depends on it).
    let mut shards: Vec<Vec<(usize, S)>> = (0..n_shards).map(|_| Vec::new()).collect();
    for (gi, g) in groups.into_iter().enumerate() {
        shards[gi % n_shards].extend(g.members);
    }

    let ref_of = |i: usize| clock_refs.get(i).copied().unwrap_or(0);

    if n_shards == 1 {
        // Degenerate path: one shard ≡ the serial merger, run inline.
        let (idx, shard_streams): (Vec<usize>, Vec<S>) = shards.pop().unwrap().into_iter().unzip();
        let shard_offsets: Vec<i64> = idx.iter().map(|&i| offsets[i]).collect();
        let shard_refs: Vec<u64> = idx.iter().map(|&i| ref_of(i)).collect();
        let mut merger = Merger::new_at(
            shard_streams,
            &shard_offsets,
            &shard_refs,
            merge_cfg.clone(),
        );
        for (r, &i) in idx.iter().enumerate() {
            merger.seed_pending(r, std::mem::take(&mut seeds[i]));
        }
        return merger.run(sink);
    }

    let batch_size = cfg.batch.max(1);
    // Raised by a shard that fails, checked by everyone: the consumer
    // stops sinking (mirroring the serial merger, which stops at the
    // error) and the healthy shards stop sending.
    let poison = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::with_capacity(n_shards);
    let mut cursors = Vec::with_capacity(n_shards);
    for members in shards {
        let (idx, shard_streams): (Vec<usize>, Vec<S>) = members.into_iter().unzip();
        let shard_offsets: Vec<i64> = idx.iter().map(|&i| offsets[i]).collect();
        let shard_refs: Vec<u64> = idx.iter().map(|&i| ref_of(i)).collect();
        let shard_seeds: Vec<Vec<PhyEvent>> =
            idx.iter().map(|&i| std::mem::take(&mut seeds[i])).collect();
        let merge_cfg = merge_cfg.clone();
        let (tx, rx) = mpsc::sync_channel::<Vec<JFrame>>(cfg.queue_batches.max(1));
        let poison = Arc::clone(&poison);
        let handle = std::thread::spawn(move || -> Result<MergeStats, FormatError> {
            let mut merger = Merger::new_at(shard_streams, &shard_offsets, &shard_refs, merge_cfg);
            for (r, seed) in shard_seeds.into_iter().enumerate() {
                merger.seed_pending(r, seed);
            }
            let mut batch = Vec::with_capacity(batch_size);
            // If the receiver hangs up or another shard fails, stop
            // sending and let the merge run dry instead of panicking.
            let mut hung_up = false;
            let result = merger.run(|jf| {
                if hung_up {
                    return;
                }
                if poison.load(Ordering::Relaxed) {
                    hung_up = true;
                    return;
                }
                batch.push(jf);
                if batch.len() >= batch_size && tx.send(std::mem::take(&mut batch)).is_err() {
                    hung_up = true;
                }
            });
            match result {
                Ok(stats) => {
                    if !hung_up && !batch.is_empty() {
                        let _ = tx.send(batch);
                    }
                    Ok(stats)
                }
                Err(e) => {
                    poison.store(true, Ordering::Relaxed);
                    Err(e)
                }
            }
        });
        handles.push(handle);
        cursors.push(ShardCursor {
            rx,
            buf: VecDeque::new(),
            done: false,
        });
    }

    // K-way merge: one head per shard, keyed (ts, channel, shard). Channels
    // never span shards, so equal-(ts, channel) ties cannot occur across
    // shards; within a shard the stream already carries the serial order.
    let mut heap: BinaryHeap<Reverse<(u64, u8, usize)>> = BinaryHeap::new();
    for (i, c) in cursors.iter_mut().enumerate() {
        c.refill();
        if let Some(jf) = c.buf.front() {
            heap.push(Reverse((jf.ts, jf.channel.number(), i)));
        }
    }
    while let Some(Reverse((_, _, i))) = heap.pop() {
        if poison.load(Ordering::Relaxed) {
            break; // a shard failed: stop sinking, surface the error below
        }
        let jf = cursors[i].buf.pop_front().expect("head present");
        sink(jf);
        cursors[i].refill();
        if let Some(next) = cursors[i].buf.front() {
            heap.push(Reverse((next.ts, next.channel.number(), i)));
        }
    }

    // Disconnect the receivers before joining so producers blocked on a
    // full queue wake up and wind down (only possible on the poison path).
    drop(cursors);
    let mut stats = MergeStats::default();
    let mut first_err = None;
    for h in handles {
        match h.join().expect("shard thread panicked") {
            Ok(s) => stats.absorb(&s),
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(stats),
    }
}

struct ShardCursor {
    rx: mpsc::Receiver<Vec<JFrame>>,
    buf: VecDeque<JFrame>,
    done: bool,
}

impl ShardCursor {
    /// Blocks for the next batch when the buffer runs dry; marks the shard
    /// done when its sender disconnects (merge finished or failed).
    fn refill(&mut self) {
        while self.buf.is_empty() && !self.done {
            match self.rx.recv() {
                Ok(batch) => self.buf = batch.into(),
                Err(_) => self.done = true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_ieee80211::fc::FcFlags;
    use jigsaw_ieee80211::frame::{DataFrame, Frame};
    use jigsaw_ieee80211::wire::serialize_frame;
    use jigsaw_ieee80211::{Channel, MacAddr, PhyRate, SeqNum};
    use jigsaw_trace::stream::MemoryStream;
    use jigsaw_trace::{MonitorId, PhyStatus, RadioId, RadioMeta};

    fn meta(radio: u16, chan: u8) -> RadioMeta {
        RadioMeta {
            radio: RadioId(radio),
            monitor: MonitorId(radio / 2),
            channel: Channel::of(chan),
            anchor_wall_us: 0,
            anchor_local_us: 0,
        }
    }

    fn frame_bytes(seq: u16, body: u8) -> Vec<u8> {
        serialize_frame(&Frame::Data(DataFrame {
            duration: 44,
            addr1: MacAddr::local(1, 1),
            addr2: MacAddr::local(2, 2),
            addr3: MacAddr::local(3, 3),
            seq: SeqNum::new(seq),
            frag: 0,
            flags: FcFlags {
                to_ds: true,
                ..Default::default()
            },
            null: false,
            body: vec![body; 48],
        }))
    }

    fn ev(radio: u16, ts: u64, chan: u8, bytes: Vec<u8>) -> PhyEvent {
        let wire_len = bytes.len() as u32;
        PhyEvent {
            radio: RadioId(radio),
            ts_local: ts,
            channel: Channel::of(chan),
            rate: PhyRate::R11,
            rssi_dbm: -55,
            status: PhyStatus::Ok,
            wire_len,
            bytes: bytes.into(),
        }
    }

    /// Two radios per channel on 1/6/11; every channel carries its own
    /// traffic. Streams built twice (MemoryStream is not Clone).
    fn three_channel_streams() -> Vec<MemoryStream> {
        let chans = [1u8, 6, 1, 6, 11, 11];
        let mut per_radio: Vec<Vec<PhyEvent>> = vec![Vec::new(); chans.len()];
        for k in 0..40u64 {
            for (ci, &c) in [1u8, 6, 11].iter().enumerate() {
                let t = 2_000 + k * 2_500 + ci as u64 * 13;
                let bytes = frame_bytes((k % 4000) as u16, c);
                for (r, &rc) in chans.iter().enumerate() {
                    if rc == c {
                        per_radio[r].push(ev(r as u16, t + r as u64 % 3, c, bytes.clone()));
                    }
                }
            }
        }
        per_radio
            .into_iter()
            .enumerate()
            .map(|(r, evs)| MemoryStream::new(meta(r as u16, chans[r]), evs))
            .collect()
    }

    fn keys(out: &[JFrame]) -> Vec<(u64, u8, Vec<u8>, Vec<u16>)> {
        out.iter()
            .map(|j| {
                (
                    j.ts,
                    j.channel.number(),
                    j.bytes.to_vec(),
                    j.instances.iter().map(|i| i.radio.0).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn sharded_equals_serial_across_thread_counts() {
        let serial = {
            let merger = Merger::new(three_channel_streams(), &[0; 6], MergeConfig::default());
            let mut out = Vec::new();
            merger.run(|jf| out.push(jf)).unwrap();
            out
        };
        assert_eq!(serial.len(), 120);
        for threads in [1usize, 2, 3, 5] {
            let cfg = ShardConfig {
                max_threads: threads,
                batch: 7, // deliberately small: exercise batching + refill
                queue_batches: 2,
            };
            let mut out = Vec::new();
            let stats = run_sharded(
                three_channel_streams(),
                &[0; 6],
                Vec::new(),
                &[],
                &MergeConfig::default(),
                &cfg,
                |jf| out.push(jf),
            )
            .unwrap();
            assert_eq!(stats.jframes_out, serial.len() as u64, "threads={threads}");
            assert_eq!(keys(&out), keys(&serial), "threads={threads}");
            assert!(stats.peak_buffered > 0, "shard peaks must be absorbed");
        }
    }

    #[test]
    fn sharded_respects_seed_prefixes() {
        // Events already pulled for bootstrap are re-injected per radio.
        let f = frame_bytes(1, 1);
        let s0 = MemoryStream::new(meta(0, 1), vec![ev(0, 9_000, 1, f.clone())]);
        let s1 = MemoryStream::new(meta(1, 6), Vec::new());
        let seeds = vec![vec![ev(0, 1_000, 1, f.clone())], vec![ev(1, 1_003, 6, f)]];
        let mut out = Vec::new();
        let stats = run_sharded(
            vec![s0, s1],
            &[0, 0],
            seeds,
            &[],
            &MergeConfig::default(),
            &ShardConfig {
                max_threads: 2,
                ..ShardConfig::default()
            },
            |jf| out.push(jf),
        )
        .unwrap();
        assert_eq!(stats.events_in, 3);
        assert_eq!(out.len(), 3); // ch1@1000, ch6@1003 (distinct channels!), ch1@9000
        assert_eq!(out[0].ts, 1_000);
        assert_eq!(out[1].ts, 1_003);
        assert_eq!(out[2].ts, 9_000);
    }

    /// Channel identity is the radio's *tuned* channel, never the
    /// per-event tag: an event mistagged with another channel (a malformed
    /// trace, say) must not make serial and sharded output diverge —
    /// sharding partitions whole streams, so the merge must key on the
    /// same per-radio channel.
    #[test]
    fn mistagged_event_channel_cannot_break_equivalence() {
        let f = frame_bytes(3, 9);
        let build = || {
            // Radio 0 is tuned to channel 1 but its event is tagged ch6;
            // radio 1 (ch6) hears identical bytes at the same instant.
            let mut e0 = ev(0, 1_000, 6, f.clone());
            e0.radio = RadioId(0);
            vec![
                MemoryStream::new(meta(0, 1), vec![e0.clone()]),
                MemoryStream::new(meta(1, 6), vec![ev(1, 1_002, 6, f.clone())]),
            ]
        };
        let mut serial = Vec::new();
        Merger::new(build(), &[0, 0], MergeConfig::default())
            .run(|jf| serial.push(jf))
            .unwrap();
        let mut sharded = Vec::new();
        run_sharded(
            build(),
            &[0, 0],
            Vec::new(),
            &[],
            &MergeConfig::default(),
            &ShardConfig {
                max_threads: 2,
                ..ShardConfig::default()
            },
            |jf| sharded.push(jf),
        )
        .unwrap();
        // Tuned channels differ → two jframes, in both drivers.
        assert_eq!(serial.len(), 2);
        assert_eq!(keys(&sharded), keys(&serial));
        assert_eq!(serial[0].channel, Channel::of(1));
        assert_eq!(serial[1].channel, Channel::of(6));
    }

    /// A stream that yields a few events, then a decode error — the shape
    /// of a truncated/corrupt on-disk trace.
    struct FailingStream {
        inner: MemoryStream,
    }

    impl jigsaw_trace::stream::EventStream for FailingStream {
        fn meta(&self) -> RadioMeta {
            self.inner.meta()
        }
        fn next_event(&mut self) -> Result<Option<PhyEvent>, FormatError> {
            match self.inner.next_event()? {
                Some(ev) => Ok(Some(ev)),
                None => Err(FormatError::BadRecord("truncated trace")),
            }
        }
    }

    /// One shard failing mid-merge must surface the error (and terminate)
    /// rather than silently completing on the healthy channels.
    #[test]
    fn shard_error_propagates_and_terminates() {
        let f = frame_bytes(2, 5);
        let mut bad_events = Vec::new();
        let mut good_events = Vec::new();
        for k in 0..50u64 {
            bad_events.push(ev(
                0,
                1_000 + k * 2_000,
                1,
                frame_bytes((k % 4000) as u16, 1),
            ));
            good_events.push(ev(1, 1_000 + k * 2_000, 6, f.clone()));
        }
        let bad = FailingStream {
            inner: MemoryStream::new(meta(0, 1), bad_events),
        };
        let good = FailingStream {
            // The "good" stream also errors at the end — both shards fail,
            // proving termination does not rely on one staying healthy.
            inner: MemoryStream::new(meta(1, 6), good_events),
        };
        let err = run_sharded(
            vec![bad, good],
            &[0, 0],
            Vec::new(),
            &[],
            &MergeConfig::default(),
            &ShardConfig {
                max_threads: 2,
                batch: 4,
                queue_batches: 1,
            },
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, FormatError::BadRecord(_)), "{err:?}");
    }

    #[test]
    fn empty_input_is_fine() {
        let stats = run_sharded(
            Vec::<MemoryStream>::new(),
            &[],
            Vec::new(),
            &[],
            &MergeConfig::default(),
            &ShardConfig::default(),
            |_| {},
        )
        .unwrap();
        assert_eq!(stats.jframes_out, 0);
    }

    #[test]
    fn shard_count_planning() {
        let cfg = ShardConfig {
            max_threads: 4,
            ..ShardConfig::default()
        };
        assert_eq!(cfg.shards_for(3), 3);
        assert_eq!(cfg.shards_for(9), 4);
        assert_eq!(cfg.shards_for(1), 1);
        let serial = ShardConfig {
            max_threads: 1,
            ..ShardConfig::default()
        };
        assert_eq!(serial.shards_for(3), 1);
    }
}
