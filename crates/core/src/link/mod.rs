//! Link-layer reconstruction (paper §5.1): jframes → transmission attempts
//! → frame exchanges, with inference for frames the monitors missed.

pub mod attempt;
pub mod exchange;

pub use attempt::{Attempt, AttemptAssembler, AttemptOutcome};
pub use exchange::{DeliveryStatus, Exchange, ExchangeAssembler, LinkStats};
