//! Frame-exchange assembly (paper §5.1, right side of Figure 5).
//!
//! A *frame exchange* is the complete set of transmission attempts —
//! original plus link-layer retransmissions — that ends with an MSDU either
//! delivered or abandoned. Attempts from the same transmitter are composed
//! by the sequence-number delta rules:
//!
//! * **R1** — group-addressed frames are never retransmitted: attempt ≡
//!   exchange;
//! * **R2** — delta 0: a retransmission; coalesce into the open exchange;
//! * **R3** — delta 1: a new exchange begins; the previous one closes and
//!   any queued sequence-less attempts are resolved against it;
//! * **R4** — delta > 1: a gap the monitors missed entirely; no inference —
//!   flush and start fresh.
//!
//! Heuristics from the paper: exchanges complete within 500 ms; ACKs are
//! less likely to be lost than data; the coded rate never increases on a
//! retry (used to sanity-check R2 coalescing); retransmissions usually set
//! the retry bit.

use crate::link::attempt::{Attempt, AttemptOutcome};
use jigsaw_ieee80211::{MacAddr, Micros, PhyRate, SeqNum, Subtype};
use jigsaw_trace::Payload;
// tidy:allow-file(hash-order): the open-exchange map is keyed lookup; stale entries are sorted by (first_ts, key) before emission
use std::collections::HashMap;

/// Delivery status of an exchange as seen from the link layer alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryStatus {
    /// An ACK proves delivery.
    Delivered,
    /// No ACK observed — inherently ambiguous from a passive vantage point
    /// (the transport layer may still prove delivery via covering ACKs).
    Ambiguous,
    /// Group-addressed: delivery is undefined at the link layer.
    GroupAddressed,
}

/// One reconstructed frame exchange.
#[derive(Debug, Clone)]
pub struct Exchange {
    /// Transmitter.
    pub transmitter: MacAddr,
    /// Receiver (None when only inferred attempts were seen).
    pub receiver: Option<MacAddr>,
    /// Sequence number (None for fully inferred exchanges).
    pub seq: Option<SeqNum>,
    /// Universal time of the first attempt.
    pub first_ts: Micros,
    /// Universal time the last attempt ended.
    pub last_end: Micros,
    /// Observed transmission attempts.
    pub attempts: u8,
    /// Attempts whose DATA frame was inferred rather than captured.
    pub inferred_attempts: u8,
    /// Whether any attempt was positively acknowledged.
    pub delivery: DeliveryStatus,
    /// Subtype of the MSDU.
    pub subtype: Subtype,
    /// Rate of the *first* observed attempt (rate adaptation analyses).
    pub first_rate: PhyRate,
    /// Rate of the last attempt.
    pub last_rate: PhyRate,
    /// Whether any attempt used CTS-to-self protection.
    pub protected: bool,
    /// On-air length of the MSDU frame.
    pub wire_len: u32,
    /// Best captured bytes of the DATA frame (for transport parsing).
    /// A shared [`Payload`] handle cloned from the best attempt.
    pub bytes: Payload,
    /// True if `bytes` is a complete FCS-valid capture.
    pub data_valid: bool,
    /// Maximum instance count over the attempts (coverage bookkeeping).
    pub instance_count: usize,
}

impl Exchange {
    /// Retries = attempts − 1.
    pub fn retries(&self) -> u8 {
        self.attempts.saturating_sub(1)
    }
}

/// Counters for the paper's §5.1 numbers (0.58% of attempts, 0.14% of
/// exchanges require inference).
#[derive(Debug, Clone, Default)]
pub struct LinkStats {
    /// Total attempts consumed.
    pub attempts: u64,
    /// Attempts requiring inference (missing DATA).
    pub attempts_inferred: u64,
    /// Exchanges emitted.
    pub exchanges: u64,
    /// Exchanges containing at least one inferred attempt.
    pub exchanges_inferred: u64,
    /// Exchanges flushed by the R4 gap rule.
    pub seq_gaps: u64,
    /// Exchanges closed by the 500 ms timeout.
    pub timeouts: u64,
    /// Delivered / ambiguous tallies.
    pub delivered: u64,
    /// Exchanges with no ACK evidence.
    pub ambiguous: u64,
}

/// Exchanges must complete within this bound (paper heuristic).
pub const EXCHANGE_TIMEOUT_US: Micros = 500_000;

#[derive(Debug)]
struct OpenExchange {
    x: Exchange,
}

/// Streaming exchange assembler: feed time-ordered attempts.
#[derive(Debug, Default)]
pub struct ExchangeAssembler {
    open: HashMap<MacAddr, OpenExchange>,
    /// Link-layer statistics.
    pub stats: LinkStats,
}

impl ExchangeAssembler {
    /// Creates an assembler.
    pub fn new() -> Self {
        Self::default()
    }

    fn close(&mut self, o: OpenExchange, out: &mut Vec<Exchange>) {
        self.stats.exchanges += 1;
        if o.x.inferred_attempts > 0 {
            self.stats.exchanges_inferred += 1;
        }
        match o.x.delivery {
            DeliveryStatus::Delivered => self.stats.delivered += 1,
            DeliveryStatus::Ambiguous => self.stats.ambiguous += 1,
            DeliveryStatus::GroupAddressed => {}
        }
        out.push(o.x);
    }

    /// Feeds one attempt; closed exchanges are appended to `out`.
    pub fn push(&mut self, a: Attempt, out: &mut Vec<Exchange>) {
        self.stats.attempts += 1;
        if a.inferred_data {
            self.stats.attempts_inferred += 1;
        }
        let now = a.ts;
        self.flush_older_than(now.saturating_sub(EXCHANGE_TIMEOUT_US), true, out);

        // R1: group-addressed — the attempt is the exchange.
        if a.outcome == AttemptOutcome::NoAckExpected {
            let x = exchange_from(&a, DeliveryStatus::GroupAddressed);
            self.stats.exchanges += 1;
            out.push(x);
            return;
        }
        let Some(t) = a.transmitter else {
            // Untraceable inferred attempt; count it as its own exchange.
            let x = exchange_from(&a, delivery_of(&a));
            self.stats.exchanges += 1;
            self.stats.exchanges_inferred += 1;
            out.push(x);
            return;
        };

        match self.open.remove(&t) {
            None => {
                self.open.insert(
                    t,
                    OpenExchange {
                        x: exchange_from(&a, delivery_of(&a)),
                    },
                );
            }
            Some(mut o) => {
                let same = match (a.seq, o.x.seq) {
                    // Sequence-less (inferred) attempts attach to the open
                    // exchange when the receiver is compatible and the
                    // exchange is still unresolved (paper: queued until more
                    // data resolves their position; ACKs are less likely
                    // lost than data, so an inferred-ACK attempt usually
                    // belongs to the open, unacked exchange).
                    (None, _) => o.x.delivery != DeliveryStatus::Delivered,
                    // R2: same sequence → retransmission.
                    (Some(s), Some(os)) => s.delta(os) == 0,
                    (Some(_), None) => false,
                };
                if same {
                    merge_attempt(&mut o.x, &a);
                    self.open.insert(t, o);
                } else {
                    let delta = match (a.seq, o.x.seq) {
                        (Some(s), Some(os)) => s.delta(os),
                        _ => 1,
                    };
                    if delta > 1 {
                        self.stats.seq_gaps += 1;
                    }
                    self.close(o, out);
                    self.open.insert(
                        t,
                        OpenExchange {
                            x: exchange_from(&a, delivery_of(&a)),
                        },
                    );
                }
            }
        }

        // A delivered exchange can close immediately: the sender moves on.
        if let Some(o) = self.open.get(&t) {
            if o.x.delivery == DeliveryStatus::Delivered {
                let o = self.open.remove(&t).expect("present");
                self.close(o, out);
            }
        }
    }

    /// Closes exchanges idle since before `cutoff`.
    fn flush_older_than(&mut self, cutoff: Micros, count_timeout: bool, out: &mut Vec<Exchange>) {
        let mut stale: Vec<MacAddr> = self
            .open
            .iter()
            .filter(|(_, o)| o.x.last_end < cutoff)
            .map(|(k, _)| *k)
            .collect();
        // Deterministic emission order (exchange start, then address).
        stale.sort_by_key(|k| (self.open[k].x.first_ts, k.to_u64()));
        for k in stale {
            let o = self.open.remove(&k).expect("present");
            if count_timeout {
                self.stats.timeouts += 1;
            }
            self.close(o, out);
        }
    }

    /// End of stream.
    pub fn finish(&mut self, out: &mut Vec<Exchange>) {
        self.flush_older_than(Micros::MAX, false, out);
    }
}

fn delivery_of(a: &Attempt) -> DeliveryStatus {
    match a.outcome {
        AttemptOutcome::Acked => DeliveryStatus::Delivered,
        AttemptOutcome::NoAckSeen => DeliveryStatus::Ambiguous,
        AttemptOutcome::NoAckExpected => DeliveryStatus::GroupAddressed,
    }
}

fn exchange_from(a: &Attempt, delivery: DeliveryStatus) -> Exchange {
    Exchange {
        transmitter: a.transmitter.unwrap_or(MacAddr::ZERO),
        receiver: a.receiver,
        seq: a.seq,
        first_ts: a.ts,
        last_end: a.end_ts,
        attempts: 1,
        inferred_attempts: u8::from(a.inferred_data),
        delivery,
        subtype: a.subtype,
        first_rate: a.rate,
        last_rate: a.rate,
        protected: a.protected,
        wire_len: a.wire_len,
        bytes: a.bytes.handle(),
        data_valid: a.data_valid,
        instance_count: a.instance_count,
    }
}

fn merge_attempt(x: &mut Exchange, a: &Attempt) {
    x.attempts = x.attempts.saturating_add(1);
    x.inferred_attempts = x
        .inferred_attempts
        .saturating_add(u8::from(a.inferred_data));
    x.last_end = x.last_end.max(a.end_ts);
    x.last_rate = a.rate;
    x.protected |= a.protected;
    x.instance_count = x.instance_count.max(a.instance_count);
    if a.outcome == AttemptOutcome::Acked {
        x.delivery = DeliveryStatus::Delivered;
    }
    if a.receiver.is_some() && x.receiver.is_none() {
        x.receiver = a.receiver;
    }
    if a.seq.is_some() && x.seq.is_none() {
        x.seq = a.seq;
    }
    // Keep the best capture for transport parsing.
    if (a.data_valid && !x.data_valid)
        || (a.data_valid == x.data_valid && a.bytes.len() > x.bytes.len())
    {
        x.bytes = a.bytes.handle();
        x.data_valid = a.data_valid;
        x.wire_len = x.wire_len.max(a.wire_len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attempt(
        tx: u32,
        seq: Option<u16>,
        ts: Micros,
        outcome: AttemptOutcome,
        retry: bool,
    ) -> Attempt {
        Attempt {
            transmitter: Some(MacAddr::local(3, tx)),
            receiver: Some(MacAddr::local(0, 1)),
            ts,
            end_ts: ts + 500,
            rate: PhyRate::R11,
            seq: seq.map(SeqNum::new),
            retry,
            subtype: Subtype::Data,
            protected: false,
            outcome,
            inferred_data: false,
            wire_len: 200,
            bytes: vec![1, 2, 3].into(),
            data_valid: true,
            instance_count: 3,
        }
    }

    fn run(attempts: Vec<Attempt>) -> (Vec<Exchange>, LinkStats) {
        let mut asm = ExchangeAssembler::new();
        let mut out = Vec::new();
        for a in attempts {
            asm.push(a, &mut out);
        }
        asm.finish(&mut out);
        (out, asm.stats.clone())
    }

    #[test]
    fn single_acked_attempt_single_exchange() {
        let (out, stats) = run(vec![attempt(
            1,
            Some(10),
            1_000,
            AttemptOutcome::Acked,
            false,
        )]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].attempts, 1);
        assert_eq!(out[0].delivery, DeliveryStatus::Delivered);
        assert_eq!(stats.delivered, 1);
    }

    #[test]
    fn r2_retries_coalesce() {
        let (out, _) = run(vec![
            attempt(1, Some(10), 1_000, AttemptOutcome::NoAckSeen, false),
            attempt(1, Some(10), 3_000, AttemptOutcome::NoAckSeen, true),
            attempt(1, Some(10), 6_000, AttemptOutcome::Acked, true),
            attempt(1, Some(11), 9_000, AttemptOutcome::Acked, false),
        ]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].attempts, 3);
        assert_eq!(out[0].retries(), 2);
        assert_eq!(out[0].delivery, DeliveryStatus::Delivered);
        assert_eq!(out[1].attempts, 1);
    }

    #[test]
    fn r3_new_seq_closes_previous() {
        let (out, stats) = run(vec![
            attempt(1, Some(10), 1_000, AttemptOutcome::NoAckSeen, false),
            attempt(1, Some(11), 5_000, AttemptOutcome::Acked, false),
        ]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].seq, Some(SeqNum::new(10)));
        assert_eq!(out[0].delivery, DeliveryStatus::Ambiguous);
        assert_eq!(out[1].delivery, DeliveryStatus::Delivered);
        assert_eq!(stats.ambiguous, 1);
        assert_eq!(stats.delivered, 1);
    }

    #[test]
    fn r4_gap_counted() {
        let (out, stats) = run(vec![
            attempt(1, Some(10), 1_000, AttemptOutcome::NoAckSeen, false),
            attempt(1, Some(15), 5_000, AttemptOutcome::Acked, false),
        ]);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.seq_gaps, 1);
    }

    #[test]
    fn r1_broadcast_immediate() {
        let mut a = attempt(1, Some(3), 1_000, AttemptOutcome::NoAckExpected, false);
        a.receiver = Some(MacAddr::BROADCAST);
        let (out, _) = run(vec![a]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].delivery, DeliveryStatus::GroupAddressed);
    }

    #[test]
    fn sequence_wrap_is_r3() {
        let (out, stats) = run(vec![
            attempt(1, Some(4095), 1_000, AttemptOutcome::Acked, false),
            attempt(1, Some(0), 3_000, AttemptOutcome::Acked, false),
        ]);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.seq_gaps, 0, "wrap must read as delta 1");
    }

    #[test]
    fn inferred_attempt_attaches_to_open_unacked_exchange() {
        let mut inferred = attempt(1, None, 4_000, AttemptOutcome::Acked, false);
        inferred.inferred_data = true;
        let (out, stats) = run(vec![
            attempt(1, Some(20), 1_000, AttemptOutcome::NoAckSeen, false),
            inferred,
        ]);
        // The inferred ACK resolves the open exchange as delivered.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].attempts, 2);
        assert_eq!(out[0].delivery, DeliveryStatus::Delivered);
        assert_eq!(out[0].inferred_attempts, 1);
        assert_eq!(stats.exchanges_inferred, 1);
        assert_eq!(stats.attempts_inferred, 1);
    }

    #[test]
    fn inferred_attempt_alone_is_inferred_exchange() {
        let mut inferred = attempt(2, None, 4_000, AttemptOutcome::Acked, false);
        inferred.inferred_data = true;
        let (out, stats) = run(vec![inferred]);
        assert_eq!(out.len(), 1);
        assert_eq!(stats.exchanges_inferred, 1);
    }

    #[test]
    fn timeout_closes_stale_exchange() {
        let (out, stats) = run(vec![
            attempt(1, Some(30), 1_000, AttemptOutcome::NoAckSeen, false),
            // Next attempt from the same station arrives 600 ms later with
            // the SAME seq — but the 500 ms rule already closed the first.
            attempt(1, Some(30), 700_000, AttemptOutcome::Acked, true),
        ]);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.timeouts, 1);
    }

    #[test]
    fn independent_transmitters_do_not_interact() {
        let (out, _) = run(vec![
            attempt(1, Some(5), 1_000, AttemptOutcome::NoAckSeen, false),
            attempt(2, Some(9), 1_200, AttemptOutcome::Acked, false),
            attempt(1, Some(5), 2_000, AttemptOutcome::Acked, true),
        ]);
        assert_eq!(out.len(), 2);
        let a = out
            .iter()
            .find(|x| x.transmitter == MacAddr::local(3, 1))
            .unwrap();
        assert_eq!(a.attempts, 2);
    }

    #[test]
    fn best_bytes_kept_across_retries() {
        let mut first = attempt(1, Some(7), 1_000, AttemptOutcome::NoAckSeen, false);
        first.data_valid = false;
        first.bytes = vec![1, 2].into();
        let mut second = attempt(1, Some(7), 3_000, AttemptOutcome::Acked, true);
        second.data_valid = true;
        second.bytes = vec![1, 2, 3, 4, 5].into();
        let (out, _) = run(vec![first, second]);
        assert_eq!(out.len(), 1);
        assert!(out[0].data_valid);
        assert_eq!(out[0].bytes.len(), 5);
    }
}
