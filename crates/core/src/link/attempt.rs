//! Transmission-attempt assembly (paper §5.1, left side of Figure 5).
//!
//! Groups one to three jframes — an optional CTS-to-self, the DATA (or
//! management) frame, and the trailing ACK — into a single *transmission
//! attempt*. The Duration field carried by CTS and DATA frames bounds the
//! future instant by which the ACK must have arrived, which prevents an ACK
//! for a *missing* DATA frame from being glued to an earlier one.
//!
//! Attempts whose DATA frame the monitors never captured are *inferred*
//! from an orphaned CTS/ACK pair (or a bare orphaned ACK): the receiver
//! plainly acknowledged something.

use crate::jframe::JFrame;
use jigsaw_ieee80211::frame::Frame;
use jigsaw_ieee80211::timing::{ack_airtime_us, SIFS_US, SLOT_US};
use jigsaw_ieee80211::{MacAddr, Micros, PhyRate, SeqNum, Subtype};
use jigsaw_trace::Payload;
// tidy:allow-file(hash-order): the pending map is keyed lookup; expirations are collected and sorted by (ts, key) before emission
use std::collections::HashMap;

/// Outcome of a transmission attempt at the link layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The trailing ACK was observed.
    Acked,
    /// No ACK observed — lost, or simply not captured (ambiguous until the
    /// transport layer weighs in).
    NoAckSeen,
    /// Group-addressed frame: no ACK is ever expected.
    NoAckExpected,
}

/// One transmission attempt.
#[derive(Debug, Clone)]
pub struct Attempt {
    /// Transmitter (None only for pathological inferred attempts).
    pub transmitter: Option<MacAddr>,
    /// Addressed receiver, if knowable.
    pub receiver: Option<MacAddr>,
    /// Universal time of the DATA frame's payload start (or of the inferred
    /// position for missing DATA).
    pub ts: Micros,
    /// Universal time the DATA frame left the air.
    pub end_ts: Micros,
    /// PHY rate of the DATA frame.
    pub rate: PhyRate,
    /// 802.11 sequence number (None for inferred/control-only attempts).
    pub seq: Option<SeqNum>,
    /// Retry bit of the DATA frame.
    pub retry: bool,
    /// Subtype of the DATA frame (Data for inferred attempts).
    pub subtype: Subtype,
    /// A CTS-to-self preceded the data (802.11g protection).
    pub protected: bool,
    /// Outcome.
    pub outcome: AttemptOutcome,
    /// The DATA frame was never captured; presence inferred.
    pub inferred_data: bool,
    /// On-air length of the DATA frame (0 when inferred).
    pub wire_len: u32,
    /// Captured bytes of the DATA frame (possibly snapped; empty if
    /// inferred). A shared [`Payload`] handle cloned from the jframe.
    pub bytes: Payload,
    /// True if the DATA frame capture was FCS-valid and complete enough to
    /// parse.
    pub data_valid: bool,
    /// Instance count of the DATA jframe (coverage bookkeeping).
    pub instance_count: usize,
}

impl Attempt {
    /// Whether the attempt was positively acknowledged.
    pub fn acked(&self) -> bool {
        self.outcome == AttemptOutcome::Acked
    }

    /// Parses the DATA frame when complete.
    pub fn parse(&self) -> Option<Frame> {
        if !self.data_valid {
            return None;
        }
        jigsaw_ieee80211::wire::parse_frame(&self.bytes).ok()
    }
}

/// How long after its deadline an attempt lingers before being flushed.
const FLUSH_SLACK_US: Micros = 2_000;
/// Extra tolerance on ACK arrival relative to the Duration-field deadline.
const ACK_SLACK_US: Micros = 3 * SLOT_US;
/// The DATA stage must start within SIFS plus this of its CTS end.
const CTS_DATA_GAP_US: Micros = 200;

#[derive(Debug)]
struct PendingData {
    attempt: Attempt,
    ack_deadline: Micros,
}

#[derive(Debug, Clone, Copy)]
struct PendingCts {
    end_ts: Micros,
    covered_until: Micros,
}

/// Counters for attempt assembly.
#[derive(Debug, Clone, Default)]
pub struct AttemptStats {
    /// Attempts emitted.
    pub attempts: u64,
    /// Attempts with protection (CTS-to-self observed).
    pub protected: u64,
    /// Attempts whose DATA frame was inferred from CTS/ACK evidence.
    pub inferred: u64,
    /// Orphan CTS frames that never matched anything.
    pub orphan_cts: u64,
    /// Error jframes skipped.
    pub error_jframes: u64,
}

/// Streaming assembler: feed time-ordered jframes, receive attempts.
#[derive(Debug, Default)]
pub struct AttemptAssembler {
    pending_data: HashMap<MacAddr, PendingData>,
    pending_cts: HashMap<MacAddr, PendingCts>,
    /// Attempt assembly statistics.
    pub stats: AttemptStats,
}

impl AttemptAssembler {
    /// Creates an assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the next jframe; completed attempts are appended to `out`.
    pub fn push(&mut self, jf: &JFrame, out: &mut Vec<Attempt>) {
        let now = jf.ts;
        self.flush_expired(now, out);

        if !jf.valid {
            self.stats.error_jframes += 1;
            return;
        }
        match jf.parse() {
            Some(Frame::Cts { duration, ra }) => {
                // CTS-to-self (or RTS response): `ra` is the upcoming data
                // transmitter.
                self.pending_cts.insert(
                    ra,
                    PendingCts {
                        end_ts: jf.end_ts(),
                        covered_until: jf.end_ts() + Micros::from(duration) + ACK_SLACK_US,
                    },
                );
            }
            Some(Frame::Ack { ra, .. }) => {
                self.handle_ack(ra, jf.ts, out);
            }
            Some(Frame::Rts { .. }) => {
                // Not generated by the modeled network; NAV-only.
            }
            Some(f @ (Frame::Data(_) | Frame::Mgmt { .. })) => {
                self.handle_data(jf, &f, out);
            }
            None => {
                // Snap-truncated valid frame: recover headers via peek.
                if let Some((subtype, _)) = jf.peek() {
                    let ft = subtype.frame_type();
                    if ft == jigsaw_ieee80211::FrameType::Data
                        || ft == jigsaw_ieee80211::FrameType::Management
                    {
                        self.handle_data_loose(jf, subtype, out);
                    }
                }
            }
        }
    }

    /// End of stream: flush everything.
    pub fn finish(&mut self, out: &mut Vec<Attempt>) {
        self.flush_expired(Micros::MAX, out);
    }

    fn flush_expired(&mut self, now: Micros, out: &mut Vec<Attempt>) {
        let mut expired: Vec<MacAddr> = self
            .pending_data
            .iter()
            .filter(|(_, p)| now.saturating_sub(FLUSH_SLACK_US) > p.ack_deadline)
            .map(|(k, _)| *k)
            .collect();
        // Deterministic emission order (attempt time, then address).
        expired.sort_by_key(|k| (self.pending_data[k].attempt.ts, k.to_u64()));
        for k in expired {
            let p = self.pending_data.remove(&k).expect("present");
            self.stats.attempts += 1;
            out.push(p.attempt);
        }
        let stale: Vec<MacAddr> = self
            .pending_cts
            .iter()
            .filter(|(_, c)| now.saturating_sub(FLUSH_SLACK_US) > c.covered_until)
            .map(|(k, _)| *k)
            .collect();
        for k in stale {
            self.pending_cts.remove(&k);
            self.stats.orphan_cts += 1;
        }
    }

    fn take_protection(&mut self, transmitter: MacAddr, data_ts: Micros) -> bool {
        if let Some(c) = self.pending_cts.get(&transmitter).copied() {
            // The DATA must start within SIFS(+slack) of the CTS end.
            if data_ts >= c.end_ts && data_ts <= c.end_ts + SIFS_US + CTS_DATA_GAP_US {
                self.pending_cts.remove(&transmitter);
                return true;
            }
        }
        false
    }

    /// Common tail for parsed and loosely-recovered data frames.
    #[allow(clippy::too_many_arguments)]
    fn queue_or_emit(&mut self, attempt: Attempt, duration: u16, out: &mut Vec<Attempt>) {
        if attempt.protected {
            self.stats.protected += 1;
        }
        let group = attempt.outcome == AttemptOutcome::NoAckExpected;
        if group || attempt.transmitter.is_none() {
            self.stats.attempts += 1;
            out.push(attempt);
            return;
        }
        let t = attempt.transmitter.unwrap();
        // One outstanding unicast attempt per transmitter.
        if let Some(prev) = self.pending_data.remove(&t) {
            self.stats.attempts += 1;
            out.push(prev.attempt);
        }
        // ACK must complete by data_end + Duration (+slack); fall back to
        // SIFS + ACK airtime when the Duration field is implausible.
        let dur = if duration > 0 && duration < 33_000 {
            Micros::from(duration)
        } else {
            SIFS_US + ack_airtime_us(attempt.rate, jigsaw_ieee80211::timing::Preamble::Long)
        };
        let ack_deadline = attempt.end_ts + dur + ACK_SLACK_US;
        self.pending_data.insert(
            t,
            PendingData {
                attempt,
                ack_deadline,
            },
        );
    }

    fn handle_data(&mut self, jf: &JFrame, f: &Frame, out: &mut Vec<Attempt>) {
        let transmitter = f.transmitter();
        let receiver = f.receiver();
        let protected = transmitter
            .map(|t| self.take_protection(t, jf.ts))
            .unwrap_or(false);
        let group = receiver.is_multicast();
        let attempt = Attempt {
            transmitter,
            receiver: Some(receiver),
            ts: jf.ts,
            end_ts: jf.end_ts(),
            rate: jf.rate,
            seq: f.seq(),
            retry: f.retry(),
            subtype: f.subtype(),
            protected,
            outcome: if group {
                AttemptOutcome::NoAckExpected
            } else {
                AttemptOutcome::NoAckSeen
            },
            inferred_data: false,
            wire_len: jf.wire_len,
            bytes: jf.bytes.handle(),
            data_valid: true,
            instance_count: jf.instance_count(),
        };
        self.queue_or_emit(attempt, f.duration(), out);
    }

    /// Data path for snap-truncated frames that cannot be fully parsed.
    fn handle_data_loose(&mut self, jf: &JFrame, subtype: Subtype, out: &mut Vec<Attempt>) {
        let b = &jf.bytes;
        let addr = |off: usize| -> Option<MacAddr> {
            if b.len() < off + 6 {
                return None;
            }
            let mut m = [0u8; 6];
            m.copy_from_slice(&b[off..off + 6]);
            Some(MacAddr(m))
        };
        let receiver = addr(4);
        let transmitter = addr(10);
        let seq = if b.len() >= 24 && subtype.has_seq_ctrl() {
            Some(SeqNum::new(u16::from_le_bytes([b[22], b[23]]) >> 4))
        } else {
            None
        };
        let retry = jigsaw_ieee80211::fc::FrameControl::from_u16(u16::from_le_bytes([b[0], b[1]]))
            .map(|fc| fc.flags.retry)
            .unwrap_or(false);
        let duration = if b.len() >= 4 {
            u16::from_le_bytes([b[2], b[3]])
        } else {
            0
        };
        let group = receiver.map(|r| r.is_multicast()).unwrap_or(false);
        let protected = transmitter
            .map(|t| self.take_protection(t, jf.ts))
            .unwrap_or(false);
        let attempt = Attempt {
            transmitter,
            receiver,
            ts: jf.ts,
            end_ts: jf.end_ts(),
            rate: jf.rate,
            seq,
            retry,
            subtype,
            protected,
            outcome: if group {
                AttemptOutcome::NoAckExpected
            } else {
                AttemptOutcome::NoAckSeen
            },
            inferred_data: false,
            wire_len: jf.wire_len,
            bytes: jf.bytes.handle(),
            data_valid: false,
            instance_count: jf.instance_count(),
        };
        self.queue_or_emit(attempt, duration, out);
    }

    fn handle_ack(&mut self, ra: MacAddr, ack_ts: Micros, out: &mut Vec<Attempt>) {
        if let Some(mut p) = self.pending_data.remove(&ra) {
            // Timing check via the Duration field: the ACK must fall inside
            // the window the DATA frame reserved.
            if ack_ts + ACK_SLACK_US >= p.attempt.end_ts && ack_ts <= p.ack_deadline {
                p.attempt.outcome = AttemptOutcome::Acked;
                self.stats.attempts += 1;
                out.push(p.attempt);
                return;
            }
            // Out-of-window ACK: emit the data attempt un-acked, and treat
            // the ACK as orphaned evidence below.
            self.stats.attempts += 1;
            out.push(p.attempt);
        }
        // Orphan ACK — the DATA frame is missing from the trace. Check for
        // an orphaned CTS from the same station (protected exchange whose
        // DATA we missed), else infer a bare attempt (paper: "deduce the
        // presence ... of missing data").
        let (ts, protected) = match self.pending_cts.remove(&ra) {
            Some(c) if ack_ts <= c.covered_until => (c.end_ts + SIFS_US, true),
            Some(_) | None => (ack_ts.saturating_sub(SIFS_US + 200), false),
        };
        self.stats.attempts += 1;
        self.stats.inferred += 1;
        if protected {
            self.stats.protected += 1;
        }
        out.push(Attempt {
            transmitter: Some(ra),
            receiver: None,
            ts,
            end_ts: ack_ts.saturating_sub(SIFS_US),
            rate: PhyRate::R11,
            seq: None,
            retry: false,
            subtype: Subtype::Data,
            protected,
            outcome: AttemptOutcome::Acked,
            inferred_data: true,
            wire_len: 0,
            bytes: Payload::empty(),
            data_valid: false,
            instance_count: 0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jframe::JFrame;
    use jigsaw_ieee80211::fc::FcFlags;
    use jigsaw_ieee80211::frame::DataFrame;
    use jigsaw_ieee80211::timing::{duration_cts_to_self, duration_data_ack, Preamble};
    use jigsaw_ieee80211::wire::serialize_frame;

    fn jframe_of(frame: &Frame, ts: Micros, rate: PhyRate) -> JFrame {
        let bytes = serialize_frame(frame);
        let wire_len = bytes.len() as u32;
        JFrame {
            ts,
            bytes: bytes.into(),
            wire_len,
            rate,
            channel: jigsaw_ieee80211::Channel::of(1),
            instances: Default::default(),
            dispersion: 0,
            valid: true,
            unique: false,
        }
    }

    fn data_frame(seq: u16, retry: bool, rate: PhyRate) -> Frame {
        Frame::Data(DataFrame {
            duration: duration_data_ack(rate, Preamble::Long),
            addr1: MacAddr::local(0, 1), // AP
            addr2: MacAddr::local(3, 7), // client
            addr3: MacAddr::local(9, 1),
            seq: SeqNum::new(seq),
            frag: 0,
            flags: FcFlags {
                to_ds: true,
                retry,
                ..Default::default()
            },
            null: false,
            body: vec![0xab; 100],
        })
    }

    fn ack_to(ra: MacAddr) -> Frame {
        Frame::Ack { duration: 0, ra }
    }

    #[test]
    fn data_plus_ack_forms_acked_attempt() {
        let mut asm = AttemptAssembler::new();
        let mut out = Vec::new();
        let d = data_frame(5, false, PhyRate::R11);
        let dj = jframe_of(&d, 10_000, PhyRate::R11);
        let data_end = dj.end_ts();
        asm.push(&dj, &mut out);
        assert!(out.is_empty(), "attempt must wait for the ACK window");
        let aj = jframe_of(
            &ack_to(MacAddr::local(3, 7)),
            data_end + SIFS_US + 5,
            PhyRate::R2,
        );
        asm.push(&aj, &mut out);
        assert_eq!(out.len(), 1);
        let a = &out[0];
        assert_eq!(a.outcome, AttemptOutcome::Acked);
        assert_eq!(a.transmitter, Some(MacAddr::local(3, 7)));
        assert_eq!(a.seq, Some(SeqNum::new(5)));
        assert!(!a.inferred_data);
        assert!(!a.protected);
    }

    #[test]
    fn missing_ack_flushes_unacked() {
        let mut asm = AttemptAssembler::new();
        let mut out = Vec::new();
        let d = data_frame(6, false, PhyRate::R11);
        asm.push(&jframe_of(&d, 10_000, PhyRate::R11), &mut out);
        // A later unrelated frame pushes time past the deadline.
        let far = jframe_of(
            &data_frame(1000, false, PhyRate::R11),
            200_000,
            PhyRate::R11,
        );
        asm.push(&far, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].outcome, AttemptOutcome::NoAckSeen);
        asm.finish(&mut out);
        assert_eq!(out.len(), 2); // the far frame flushes at finish
    }

    #[test]
    fn cts_data_ack_protected_attempt() {
        let mut asm = AttemptAssembler::new();
        let mut out = Vec::new();
        let tx = MacAddr::local(3, 7);
        let rate = PhyRate::R54;
        let d = data_frame(9, false, rate);
        let dlen = serialize_frame(&d).len();
        let cts = Frame::Cts {
            duration: duration_cts_to_self(rate, dlen, Preamble::Long),
            ra: tx,
        };
        let cj = jframe_of(&cts, 5_000, PhyRate::R2);
        let cts_end = cj.end_ts();
        asm.push(&cj, &mut out);
        let dj = jframe_of(&d, cts_end + SIFS_US, rate);
        let data_end = dj.end_ts();
        asm.push(&dj, &mut out);
        let aj = jframe_of(&ack_to(tx), data_end + SIFS_US, PhyRate::R24);
        asm.push(&aj, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].protected, "CTS-to-self not linked");
        assert_eq!(out[0].outcome, AttemptOutcome::Acked);
        assert_eq!(asm.stats.protected, 1);
    }

    #[test]
    fn broadcast_is_immediate_no_ack_expected() {
        let mut asm = AttemptAssembler::new();
        let mut out = Vec::new();
        let mut d = data_frame(3, false, PhyRate::R1);
        if let Frame::Data(df) = &mut d {
            df.addr1 = MacAddr::BROADCAST;
            df.duration = 0;
            df.flags.to_ds = false;
            df.flags.from_ds = true;
        }
        asm.push(&jframe_of(&d, 1_000, PhyRate::R1), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].outcome, AttemptOutcome::NoAckExpected);
    }

    #[test]
    fn orphan_ack_infers_missing_data() {
        let mut asm = AttemptAssembler::new();
        let mut out = Vec::new();
        let tx = MacAddr::local(3, 9);
        asm.push(&jframe_of(&ack_to(tx), 50_000, PhyRate::R2), &mut out);
        assert_eq!(out.len(), 1);
        let a = &out[0];
        assert!(a.inferred_data);
        assert_eq!(a.outcome, AttemptOutcome::Acked);
        assert_eq!(a.transmitter, Some(tx));
        assert_eq!(asm.stats.inferred, 1);
    }

    #[test]
    fn orphan_cts_plus_ack_infers_protected_data() {
        let mut asm = AttemptAssembler::new();
        let mut out = Vec::new();
        let tx = MacAddr::local(3, 2);
        let cts = Frame::Cts {
            duration: 600,
            ra: tx,
        };
        let cj = jframe_of(&cts, 5_000, PhyRate::R2);
        asm.push(&cj, &mut out);
        // DATA missing; ACK arrives inside the CTS reservation.
        let aj = jframe_of(&ack_to(tx), cj.end_ts() + 500, PhyRate::R2);
        asm.push(&aj, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].inferred_data);
        assert!(out[0].protected);
    }

    #[test]
    fn ack_for_different_station_does_not_match() {
        let mut asm = AttemptAssembler::new();
        let mut out = Vec::new();
        let d = data_frame(4, false, PhyRate::R11);
        let dj = jframe_of(&d, 10_000, PhyRate::R11);
        asm.push(&dj, &mut out);
        // ACK addressed to someone else entirely.
        let aj = jframe_of(
            &ack_to(MacAddr::local(5, 5)),
            dj.end_ts() + SIFS_US,
            PhyRate::R2,
        );
        asm.push(&aj, &mut out);
        // That ACK spawns an inferred attempt; our data is still pending.
        assert_eq!(out.len(), 1);
        assert!(out[0].inferred_data);
        asm.finish(&mut out);
        assert_eq!(out.len(), 2);
        let ours = out
            .iter()
            .find(|a| a.transmitter == Some(MacAddr::local(3, 7)))
            .unwrap();
        assert_eq!(ours.outcome, AttemptOutcome::NoAckSeen);
    }

    #[test]
    fn late_ack_not_glued_to_stale_data() {
        // An ACK arriving long after the Duration window must NOT be paired
        // with this data frame.
        let mut asm = AttemptAssembler::new();
        let mut out = Vec::new();
        let d = data_frame(8, false, PhyRate::R11);
        let dj = jframe_of(&d, 10_000, PhyRate::R11);
        let deadline = dj.end_ts()
            + Micros::from(duration_data_ack(PhyRate::R11, Preamble::Long))
            + ACK_SLACK_US;
        asm.push(&dj, &mut out);
        let late = jframe_of(
            &ack_to(MacAddr::local(3, 7)),
            deadline + FLUSH_SLACK_US + 1_000,
            PhyRate::R2,
        );
        asm.push(&late, &mut out);
        // Our attempt flushed un-acked; the late ACK became inferred.
        assert_eq!(out.len(), 2);
        let ours = out.iter().find(|a| !a.inferred_data).expect("real attempt");
        assert_eq!(ours.outcome, AttemptOutcome::NoAckSeen);
        assert!(out.iter().any(|a| a.inferred_data));
    }

    #[test]
    fn snapped_data_recovered_loosely() {
        let mut asm = AttemptAssembler::new();
        let mut out = Vec::new();
        let d = data_frame(12, false, PhyRate::R11);
        let full = serialize_frame(&d);
        let mut jf = jframe_of(&d, 10_000, PhyRate::R11);
        jf.bytes = full[..60].into(); // snapped below FCS
        asm.push(&jf, &mut out);
        asm.finish(&mut out);
        assert_eq!(out.len(), 1);
        let a = &out[0];
        assert!(!a.data_valid);
        assert_eq!(a.transmitter, Some(MacAddr::local(3, 7)));
        assert_eq!(a.seq, Some(SeqNum::new(12)));
    }

    #[test]
    fn error_jframes_counted_not_processed() {
        let mut asm = AttemptAssembler::new();
        let mut out = Vec::new();
        let jf = JFrame {
            ts: 1,
            bytes: vec![0xff; 10].into(),
            wire_len: 10,
            rate: PhyRate::R1,
            channel: jigsaw_ieee80211::Channel::of(1),
            instances: Default::default(),
            dispersion: 0,
            valid: false,
            unique: false,
        };
        asm.push(&jf, &mut out);
        assert!(out.is_empty());
        assert_eq!(asm.stats.error_jframes, 1);
    }
}
