//! The single-pass streaming pipeline: bootstrap → unify → link → transport.
//!
//! Mirrors the paper's online design (§4, requirement 3): traces are
//! consumed once, in time order, and every stage streams into the next.
//! Analyses subscribe via a single [`PipelineObserver`] instead of
//! materializing the 500M-jframe intermediate the paper's hardware had to
//! contend with: one observer receives every unified jframe, every
//! transmission attempt, every closed exchange, and (once, at the end)
//! the reconstructed flow records. Closures stay ergonomic through the
//! [`crate::observer`] adapters, and tuples fan one pass out to several
//! analyses.
//!
//! Every driver takes a `Vec` of [`EventSource`]s — one per radio. A source
//! abstracts *where events come from*: any in-memory or decoded
//! [`EventStream`] is a source (consumed once, with the bootstrap prefix
//! re-seeded into the merger), and a disk corpus radio
//! ([`jigsaw_trace::corpus::RadioTraceSource`]) is a source whose bootstrap
//! window is served by an index-bounded file read while the merge re-streams
//! the file from the start — so a day-long corpus is merged with memory
//! bounded by the search window, never by trace length
//! ([`MergeStats::peak_buffered`](crate::unify::MergeStats) measures it).
//!
//! Replays need not start at t = 0: a [`WindowedCorpusSource`] re-anchors
//! the clock bootstrap at any corpus timestamp (index-seeked reads, coarse
//! NTP-anchor seed, [`bootstrap_at`] refinement) and
//! [`PipelineConfig::window`] clips emission to the requested `[from, to)`
//! — the paper's "start at 11 am" replay, with I/O and merge cost
//! proportional to the window. [`WindowClipper`] documents the
//! clock-invariant membership rule and the equivalence contract a windowed
//! replay is pinned against.
//!
//! Two drivers share every stage:
//! * [`Pipeline::run`] — the serial merger;
//! * [`Pipeline::run_parallel`] — the channel-sharded merge
//!   ([`crate::shard`]): one merge thread per channel shard, with
//!   link/transport reconstruction consuming the K-way-merged jframe
//!   stream on the calling thread (so merging and reconstruction
//!   overlap). Output is jframe-for-jframe identical to the serial driver.

use crate::jframe::JFrame;
use crate::link::attempt::{Attempt, AttemptAssembler, AttemptStats};
use crate::link::exchange::{Exchange, ExchangeAssembler, LinkStats};
use crate::observer::{OnExchange, OnJFrame, PipelineObserver};
use crate::shard::ShardConfig;
use crate::sync::bootstrap::{bootstrap_at, BootstrapConfig, BootstrapError, BootstrapReport};
use crate::transport::flow::{FlowRecord, TransportAnalyzer, TransportStats};
use crate::unify::{MergeConfig, MergeStats, Merger};
use jigsaw_ieee80211::Micros;
use jigsaw_trace::format::FormatError;
use jigsaw_trace::stream::EventStream;
use jigsaw_trace::{PhyEvent, RadioMeta, TimeWindow};
use std::cmp::Reverse;
// tidy:allow-file(hash-order): coarse-offset and reorder maps are keyed lookup only; emission order comes from the replay heap
use std::collections::{BinaryHeap, HashMap};

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Bootstrap parameters.
    pub bootstrap: BootstrapConfig,
    /// Unification parameters.
    pub merge: MergeConfig,
    /// Channel-sharding parameters (the parallel drivers only).
    pub shard: ShardConfig,
    /// Replay window: when set, only jframes whose anchor-time key falls
    /// in `[from, to)` reach the observer (see [`WindowClipper`] for the
    /// clock-invariant membership rule and the equivalence contract).
    /// Pair it with windowed sources ([`WindowedCorpusSource`]) so reads
    /// are window-bounded too; with ordinary sources it clips a full
    /// replay — the reference side of the windowed-equivalence check.
    pub window: Option<TimeWindow>,
}

/// Everything the pipeline reports at the end of a run.
#[derive(Debug)]
pub struct PipelineReport {
    /// Bootstrap outcome.
    pub bootstrap: BootstrapReport,
    /// Merge statistics.
    pub merge: MergeStats,
    /// Attempt-assembly statistics.
    pub attempts: AttemptStats,
    /// Exchange-assembly statistics (the paper's §5.1 inference rates).
    pub link: LinkStats,
    /// Per-flow transport records.
    pub flows: Vec<FlowRecord>,
    /// Aggregate transport statistics.
    pub transport: TransportStats,
}

/// Errors from a pipeline run.
#[derive(Debug)]
pub enum PipelineError {
    /// Bootstrap failed.
    Bootstrap(BootstrapError),
    /// Trace decoding failed.
    Format(FormatError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Bootstrap(e) => write!(f, "bootstrap: {e}"),
            PipelineError::Format(e) => write!(f, "trace: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<BootstrapError> for PipelineError {
    fn from(e: BootstrapError) -> Self {
        PipelineError::Bootstrap(e)
    }
}

impl From<FormatError> for PipelineError {
    fn from(e: FormatError) -> Self {
        PipelineError::Format(e)
    }
}

/// A per-radio supplier of pipeline input.
///
/// Opening a source splits it into the *bootstrap window* (the NTP-anchored
/// first second, input to offset estimation) and the *merge stream*. The
/// two flavors differ in what happens to window events:
///
/// * any [`EventStream`] is a source (blanket impl): streams are
///   consumed-once, so window events — plus the one past-window event the
///   split necessarily reads — are handed back for re-seeding into the
///   merger;
/// * a rewindable disk source (e.g.
///   [`jigsaw_trace::corpus::RadioTraceSource`]) reads the window in a
///   separate index-bounded pass and lets the merge stream replay the file
///   from the start, so nothing is buffered across stages.
pub trait EventSource {
    /// The merge stream this source opens into.
    type Stream: EventStream;

    /// Opens the source, splitting off the bootstrap window.
    fn open(self, window_us: u64) -> Result<OpenedRadio<Self::Stream>, FormatError>;
}

/// One opened [`EventSource`].
pub struct OpenedRadio<S> {
    /// Radio metadata.
    pub meta: RadioMeta,
    /// Events inside the bootstrap window
    /// (`window_lo ≤ ts_local ≤ window_lo + window`) — the input to offset
    /// estimation, and nothing else: one out-of-window reference frame is
    /// enough to skew a synchronization set.
    pub window: Vec<PhyEvent>,
    /// Events consumed from the stream beyond the window (at most one for
    /// the stream impl). They must reach the merger ahead of `stream` —
    /// dropping them would lose events.
    pub carry: Vec<PhyEvent>,
    /// True when `stream` itself replays the window events (rewindable
    /// sources): the merger then must *not* be seeded with them.
    pub replay: bool,
    /// Local time the bootstrap window starts at: the NTP anchor for a
    /// from-the-start source, or the coarse-local image of the replay
    /// window's read start for a windowed one. Offset estimation windows
    /// at it, and the merger's clock EWMA references it.
    pub window_lo: Micros,
    /// The merge stream.
    pub stream: S,
}

impl<S: EventStream> EventSource for S {
    type Stream = S;

    fn open(mut self, window_us: u64) -> Result<OpenedRadio<S>, FormatError> {
        let meta = self.meta();
        let hi = meta.anchor_local_us.saturating_add(window_us);
        let mut window = Vec::new();
        let mut carry = Vec::new();
        while let Some(ev) = self.next_event()? {
            if ev.ts_local > hi {
                carry.push(ev);
                break;
            }
            window.push(ev);
        }
        Ok(OpenedRadio {
            meta,
            window,
            carry,
            replay: false,
            window_lo: meta.anchor_local_us,
            stream: self,
        })
    }
}

/// A disk-corpus radio as a pipeline source (newtype, because the blanket
/// stream impl above forbids implementing [`EventSource`] directly for the
/// foreign [`RadioTraceSource`](jigsaw_trace::corpus::RadioTraceSource)
/// type): the bootstrap window comes from an index-bounded file read, the
/// merge stream replays the file from the start, and nothing is buffered
/// between the two stages.
pub struct CorpusSource(pub jigsaw_trace::corpus::RadioTraceSource);

impl EventSource for CorpusSource {
    type Stream = jigsaw_trace::corpus::CorpusStream;

    fn open(self, window_us: u64) -> Result<OpenedRadio<Self::Stream>, FormatError> {
        let meta = self.0.meta();
        // Index-bounded prefix read (`index::find_block` delimits the
        // blocks overlapping the window); the merge stream re-reads the
        // file from the start, so nothing needs seeding.
        let window = self.0.read_bootstrap_window(window_us)?;
        let stream = self.0.open_stream()?;
        Ok(OpenedRadio {
            meta,
            window,
            carry: Vec::new(),
            replay: true,
            window_lo: meta.anchor_local_us,
            stream,
        })
    }
}

/// Left-edge warm-up: how far before `window.from` a windowed replay
/// starts reading and merging (µs). The first [`BootstrapConfig::window_us`]
/// of it feeds the mid-trace offset bootstrap; the rest gives continuous
/// resynchronization time to converge onto the full-replay clock state
/// before the first in-window jframe is emitted.
pub const WINDOW_WARMUP_US: Micros = 2_000_000;

/// Right-edge read slack (µs): how far past `window.to` each radio keeps
/// reading, so a jframe whose earliest instance sits just inside the
/// window still collects instances from radios whose NTP anchors disagree
/// by milliseconds. Generous — it costs at most a couple of extra blocks
/// per radio.
pub const WINDOW_READ_SLACK_US: Micros = 100_000;

/// A disk-corpus radio opened for a **time-windowed replay**: reads are
/// index-seeked to the window, the mid-trace bootstrap window comes from a
/// block-bounded read at the warm-up start, and the merge stream is
/// clipped so nothing past the window (plus slack) is ever decoded — disk
/// bytes are proportional to the window's blocks, not the corpus.
///
/// The window is phrased in anchor-universal time; each radio locates it
/// on its own local clock through [`RadioMeta::coarse_local`] (the NTP
/// anchor pair as the coarse seed), and [`bootstrap_at`] then refines the
/// offsets from sync-quality frames found right there.
pub struct WindowedCorpusSource {
    source: jigsaw_trace::corpus::RadioTraceSource,
    window: TimeWindow,
    warmup_us: Micros,
    slack_us: Micros,
}

impl WindowedCorpusSource {
    /// Wraps a corpus radio for a `[from, to)` replay with the default
    /// warm-up and read slack.
    pub fn new(source: jigsaw_trace::corpus::RadioTraceSource, window: TimeWindow) -> Self {
        Self::with_margins(source, window, WINDOW_WARMUP_US, WINDOW_READ_SLACK_US)
    }

    /// [`WindowedCorpusSource::new`] with explicit margins (tests pin edge
    /// behavior with tight ones).
    pub fn with_margins(
        source: jigsaw_trace::corpus::RadioTraceSource,
        window: TimeWindow,
        warmup_us: Micros,
        slack_us: Micros,
    ) -> Self {
        WindowedCorpusSource {
            source,
            window,
            warmup_us,
            slack_us,
        }
    }
}

impl EventSource for WindowedCorpusSource {
    type Stream = jigsaw_trace::corpus::WindowedCorpusStream;

    fn open(self, window_us: u64) -> Result<OpenedRadio<Self::Stream>, FormatError> {
        let meta = self.source.meta();
        let lo = meta.coarse_local(self.window.from.saturating_sub(self.warmup_us));
        let hi = meta
            .coarse_local(self.window.to)
            .saturating_add(self.slack_us);
        // Mid-trace bootstrap window: one `window_us` of events starting at
        // the warm-up start, read through the block index.
        let window = self
            .source
            .read_window(lo, lo.saturating_add(window_us).min(hi))?;
        // The merge stream replays the same range from disk (bootstrap
        // events included — `replay` tells the driver not to seed them).
        let stream = self.source.open_stream_range(lo, hi)?;
        Ok(OpenedRadio {
            meta,
            window,
            carry: Vec::new(),
            replay: true,
            window_lo: lo,
            stream,
        })
    }
}

/// Decides which jframes belong to a replay window.
///
/// Membership is keyed on **anchor time**, not merged universal time: a
/// jframe's window key is the minimum over its instances of
/// [`RadioMeta::anchor_universal`]`(ts_local)` — a value derived purely
/// from captured timestamps and manifest anchors. Merged universal
/// timestamps depend on clock state (a mid-trace bootstrap re-derives the
/// timeline, so windowed and full replays agree on `ts` only to the
/// re-anchor tolerance); the anchor key is identical in both, which is
/// what makes "windowed ≡ full-clipped-to-window" an exact, pinnable
/// equivalence on [`JFrame::stable_digest`] multisets.
pub struct WindowClipper {
    window: TimeWindow,
    coarse: HashMap<u16, i64>,
}

impl WindowClipper {
    /// Builds a clipper for `window` over the given radio set.
    pub fn new(metas: &[RadioMeta], window: TimeWindow) -> Self {
        WindowClipper {
            window,
            coarse: metas
                .iter()
                .map(|m| (m.radio.0, m.coarse_offset_us()))
                .collect(),
        }
    }

    /// The window being clipped to.
    pub fn window(&self) -> TimeWindow {
        self.window
    }

    /// The jframe's clock-invariant window key: the earliest instance in
    /// anchor time (falls back to the merged `ts` for an instance-less
    /// jframe, which the merger never emits).
    pub fn anchor_ts(&self, jf: &JFrame) -> Micros {
        jf.instances
            .iter()
            .map(|i| {
                let off = self.coarse.get(&i.radio.0).copied().unwrap_or(0);
                (i.ts_local as i64 - off).max(0) as Micros
            })
            .min()
            .unwrap_or(jf.ts)
    }

    /// True when the jframe belongs to the window.
    pub fn admits(&self, jf: &JFrame) -> bool {
        self.window.contains(self.anchor_ts(jf))
    }
}

/// Every radio's opened source, ready for bootstrap + merge.
pub(crate) struct SourceSet<S> {
    pub metas: Vec<RadioMeta>,
    pub windows: Vec<Vec<PhyEvent>>,
    pub carries: Vec<Vec<PhyEvent>>,
    pub replays: Vec<bool>,
    pub window_los: Vec<Micros>,
    pub streams: Vec<S>,
}

impl<S: EventStream> SourceSet<S> {
    /// Opens all sources, preserving radio order.
    pub fn open<I>(sources: Vec<I>, window_us: u64) -> Result<Self, FormatError>
    where
        I: EventSource<Stream = S>,
    {
        let n = sources.len();
        let mut set = SourceSet {
            metas: Vec::with_capacity(n),
            windows: Vec::with_capacity(n),
            carries: Vec::with_capacity(n),
            replays: Vec::with_capacity(n),
            window_los: Vec::with_capacity(n),
            streams: Vec::with_capacity(n),
        };
        for src in sources {
            let opened = src.open(window_us)?;
            set.metas.push(opened.meta);
            set.windows.push(opened.window);
            set.carries.push(opened.carry);
            set.replays.push(opened.replay);
            set.window_los.push(opened.window_lo);
            set.streams.push(opened.stream);
        }
        Ok(set)
    }

    /// Runs bootstrap over the in-window events only, windowed at each
    /// source's declared window start.
    pub fn bootstrap(&self, cfg: &BootstrapConfig) -> Result<BootstrapReport, BootstrapError> {
        let views: Vec<&[PhyEvent]> = self.windows.iter().map(|w| w.as_slice()).collect();
        bootstrap_at(&self.metas, &views, &self.window_los, cfg)
    }

    /// The window clipper for this radio set, when the config asks for one.
    pub fn clipper(&self, cfg: &PipelineConfig) -> Option<WindowClipper> {
        cfg.window.map(|w| WindowClipper::new(&self.metas, w))
    }

    /// Splits into merge input: the streams, plus per radio the events to
    /// seed ahead of them (empty for replaying sources) and the local time
    /// to reference the clock EWMA at.
    pub fn into_merge_input(self) -> (Vec<S>, Vec<Vec<PhyEvent>>, Vec<Micros>) {
        let seeds = self
            .windows
            .into_iter()
            .zip(self.carries)
            .zip(self.replays)
            .map(|((mut window, carry), replay)| {
                if replay {
                    debug_assert!(carry.is_empty(), "replay sources never carry");
                    Vec::new()
                } else {
                    window.extend(carry);
                    window
                }
            })
            .collect();
        (self.streams, seeds, self.window_los)
    }
}

/// Everything downstream of unification: attempt assembly → exchange
/// assembly → transport reconstruction, plus the exchange reordering heap
/// (exchanges close out of order — a delivered exchange closes at its ACK,
/// an ambiguous one lingers to the 500 ms timeout — but transport
/// reconstruction needs transmission-time order, so closed exchanges sit in
/// a small heap until a 1 s watermark passes them).
///
/// Both the serial and the sharded drivers feed this consumer, so parallel
/// runs reconstruct exactly what serial runs reconstruct.
struct Downstream<O> {
    attempts: AttemptAssembler,
    exchanges: ExchangeAssembler,
    transport: TransportAnalyzer,
    attempt_buf: Vec<Attempt>,
    exchange_buf: Vec<Exchange>,
    reorder: BinaryHeap<Reverse<(u64, u64)>>,
    reorder_store: HashMap<u64, Exchange>,
    reorder_seq: u64,
    obs: O,
}

const REORDER_HORIZON_US: u64 = 1_000_000;

impl<O: PipelineObserver> Downstream<O> {
    fn new(obs: O) -> Self {
        Downstream {
            attempts: AttemptAssembler::new(),
            exchanges: ExchangeAssembler::new(),
            transport: TransportAnalyzer::new(),
            attempt_buf: Vec::new(),
            exchange_buf: Vec::new(),
            reorder: BinaryHeap::new(),
            reorder_store: HashMap::new(),
            reorder_seq: 0,
            obs,
        }
    }

    fn enqueue_closed(&mut self) {
        for x in self.exchange_buf.drain(..) {
            self.reorder.push(Reverse((x.first_ts, self.reorder_seq)));
            self.reorder_store.insert(self.reorder_seq, x);
            self.reorder_seq += 1;
        }
    }

    fn observe(&mut self, jf: &JFrame) {
        self.obs.on_jframe(jf);
        self.attempts.push(jf, &mut self.attempt_buf);
        for a in self.attempt_buf.drain(..) {
            self.obs.on_attempt(&a);
            self.exchanges.push(a, &mut self.exchange_buf);
        }
        self.enqueue_closed();
        let watermark = jf.ts.saturating_sub(REORDER_HORIZON_US);
        while let Some(&Reverse((ts, seq))) = self.reorder.peek() {
            if ts >= watermark {
                break;
            }
            self.reorder.pop();
            let x = self.reorder_store.remove(&seq).expect("stored exchange");
            self.transport.push(&x);
            self.obs.on_exchange(&x);
        }
    }

    fn finish(mut self) -> (AttemptStats, LinkStats, Vec<FlowRecord>, TransportStats) {
        self.attempts.finish(&mut self.attempt_buf);
        for a in self.attempt_buf.drain(..) {
            self.obs.on_attempt(&a);
            self.exchanges.push(a, &mut self.exchange_buf);
        }
        self.exchanges.finish(&mut self.exchange_buf);
        self.enqueue_closed();
        while let Some(Reverse((_, seq))) = self.reorder.pop() {
            let x = self.reorder_store.remove(&seq).expect("stored exchange");
            self.transport.push(&x);
            self.obs.on_exchange(&x);
        }
        let (flows, transport_stats) = self.transport.finish();
        self.obs.on_flows(&flows);
        (
            self.attempts.stats.clone(),
            self.exchanges.stats.clone(),
            flows,
            transport_stats,
        )
    }
}

/// Public handle over the post-unification reconstruction chain (attempt
/// assembly → exchange assembly → transport reconstruction, with the same
/// exchange reordering [`Pipeline::run`] applies) for drivers that produce
/// jframes *outside* [`Pipeline`] — the live tail driver chief among them.
///
/// Push unified jframes in emission order via [`Reconstruction::push`], then
/// call [`Reconstruction::finish`] exactly once. An observer fed this way
/// sees the identical callback stream it would see from a batch
/// [`Pipeline::run`] over the same jframes.
pub struct Reconstruction<O> {
    inner: Downstream<O>,
}

impl<O: PipelineObserver> Reconstruction<O> {
    /// Wraps an observer; see [`Pipeline::run`] for the observer contract.
    pub fn new(obs: O) -> Self {
        Reconstruction {
            inner: Downstream::new(obs),
        }
    }

    /// Feeds one unified jframe (must arrive in emission order).
    pub fn push(&mut self, jf: &JFrame) {
        self.inner.observe(jf);
    }

    /// Flushes every assembler and delivers the flow records, returning
    /// `(attempts, link, flows, transport)` — the same aggregates
    /// [`PipelineReport`] carries.
    pub fn finish(self) -> (AttemptStats, LinkStats, Vec<FlowRecord>, TransportStats) {
        self.inner.finish()
    }
}

/// The pipeline driver.
pub struct Pipeline;

impl Pipeline {
    /// Runs the full pipeline over per-radio sources (streams or disk
    /// corpus radios), delivering every output stream to `obs`.
    ///
    /// The observer receives every unified jframe, every transmission
    /// attempt (the paper's §7.2 interference analysis operates on
    /// attempts, which are distinct from frame exchanges), every closed
    /// exchange, and — once, at the end — the reconstructed flow records.
    /// Pass `()` for no observation, a closure adapter such as
    /// [`OnJFrame`] for one stream, a tuple to fan out to several
    /// analyses, or `&mut analysis` to keep the analysis afterwards.
    pub fn run<I: EventSource>(
        sources: Vec<I>,
        cfg: &PipelineConfig,
        obs: impl PipelineObserver,
    ) -> Result<PipelineReport, PipelineError> {
        let set = SourceSet::open(sources, cfg.bootstrap.window_us)?;
        let boot = set.bootstrap(&cfg.bootstrap)?;
        let clip = set.clipper(cfg);

        let (streams, seeds, refs) = set.into_merge_input();
        let mut merger = Merger::new_at(streams, &boot.offsets, &refs, cfg.merge.clone());
        for (r, seed) in seeds.into_iter().enumerate() {
            merger.seed_pending(r, seed);
        }
        let mut ds = Downstream::new(obs);
        let merge_stats = merger.run(|jf| {
            if clip.as_ref().is_none_or(|c| c.admits(&jf)) {
                ds.observe(&jf);
            }
        })?;
        let (attempts, link, flows, transport) = ds.finish();

        Ok(PipelineReport {
            bootstrap: boot,
            merge: merge_stats,
            attempts,
            link,
            flows,
            transport,
        })
    }

    /// [`Pipeline::run`] with the channel-sharded parallel merge
    /// ([`crate::shard`]): bootstrap is unchanged (it is global — monitor
    /// clocks bridge channels), the merge fans out one thread per channel
    /// shard, and reconstruction consumes the re-merged stream here on the
    /// calling thread — so the observer needs no `Send` bound and sees
    /// exactly what [`Pipeline::run`] would deliver.
    pub fn run_parallel<I>(
        sources: Vec<I>,
        cfg: &PipelineConfig,
        obs: impl PipelineObserver,
    ) -> Result<PipelineReport, PipelineError>
    where
        I: EventSource,
        I::Stream: Send + 'static,
    {
        let set = SourceSet::open(sources, cfg.bootstrap.window_us)?;
        let boot = set.bootstrap(&cfg.bootstrap)?;
        let clip = set.clipper(cfg);

        let (streams, seeds, refs) = set.into_merge_input();
        let mut ds = Downstream::new(obs);
        let merge_stats = crate::shard::run_sharded(
            streams,
            &boot.offsets,
            seeds,
            &refs,
            &cfg.merge,
            &cfg.shard,
            |jf| {
                if clip.as_ref().is_none_or(|c| c.admits(&jf)) {
                    ds.observe(&jf);
                }
            },
        )?;
        let (attempts, link, flows, transport) = ds.finish();

        Ok(PipelineReport {
            bootstrap: boot,
            merge: merge_stats,
            attempts,
            link,
            flows,
            transport,
        })
    }

    /// Bootstrap + serial merge only — no link/transport reconstruction,
    /// so only [`PipelineObserver::on_jframe`] fires. Benchmarks isolate
    /// the merge stage with this; `repro merge --corpus` streams jframes
    /// off disk through it.
    pub fn merge_only<I: EventSource>(
        sources: Vec<I>,
        cfg: &PipelineConfig,
        mut obs: impl PipelineObserver,
    ) -> Result<(BootstrapReport, MergeStats), PipelineError> {
        let set = SourceSet::open(sources, cfg.bootstrap.window_us)?;
        let boot = set.bootstrap(&cfg.bootstrap)?;
        let clip = set.clipper(cfg);
        let (streams, seeds, refs) = set.into_merge_input();
        let mut merger = Merger::new_at(streams, &boot.offsets, &refs, cfg.merge.clone());
        for (r, seed) in seeds.into_iter().enumerate() {
            merger.seed_pending(r, seed);
        }
        let stats = merger.run(|jf| {
            if clip.as_ref().is_none_or(|c| c.admits(&jf)) {
                obs.on_jframe(&jf);
            }
        })?;
        Ok((boot, stats))
    }

    /// Bootstrap + channel-sharded merge only (see [`Pipeline::merge_only`]).
    pub fn merge_only_parallel<I>(
        sources: Vec<I>,
        cfg: &PipelineConfig,
        mut obs: impl PipelineObserver,
    ) -> Result<(BootstrapReport, MergeStats), PipelineError>
    where
        I: EventSource,
        I::Stream: Send + 'static,
    {
        let set = SourceSet::open(sources, cfg.bootstrap.window_us)?;
        let boot = set.bootstrap(&cfg.bootstrap)?;
        let clip = set.clipper(cfg);
        let (streams, seeds, refs) = set.into_merge_input();
        let stats = crate::shard::run_sharded(
            streams,
            &boot.offsets,
            seeds,
            &refs,
            &cfg.merge,
            &cfg.shard,
            |jf| {
                if clip.as_ref().is_none_or(|c| c.admits(&jf)) {
                    obs.on_jframe(&jf);
                }
            },
        )?;
        Ok((boot, stats))
    }

    /// Convenience wrapper that materializes jframes and exchanges
    /// (small runs and tests only).
    pub fn run_collect<I: EventSource>(
        sources: Vec<I>,
        cfg: &PipelineConfig,
    ) -> Result<(Vec<JFrame>, Vec<Exchange>, PipelineReport), PipelineError> {
        let mut jframes = Vec::new();
        let mut xs = Vec::new();
        let report = Self::run(
            sources,
            cfg,
            (
                OnJFrame(|jf: &JFrame| jframes.push(jf.clone())),
                OnExchange(|x: &Exchange| xs.push(x.clone())),
            ),
        )?;
        Ok((jframes, xs, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_ieee80211::fc::FcFlags;
    use jigsaw_ieee80211::frame::{DataFrame, Frame};
    use jigsaw_ieee80211::wire::serialize_frame;
    use jigsaw_ieee80211::{Channel, MacAddr, PhyRate, SeqNum};
    use jigsaw_trace::stream::MemoryStream;
    use jigsaw_trace::{MonitorId, PhyStatus, RadioId};

    fn meta(radio: u16, anchor_local: u64) -> RadioMeta {
        RadioMeta {
            radio: RadioId(radio),
            monitor: MonitorId(radio),
            channel: Channel::of(1),
            anchor_wall_us: 0,
            anchor_local_us: anchor_local,
        }
    }

    fn frame_bytes(seq: u16) -> Vec<u8> {
        serialize_frame(&Frame::Data(DataFrame {
            duration: 44,
            addr1: MacAddr::local(1, 1),
            addr2: MacAddr::local(2, 2),
            addr3: MacAddr::local(3, 3),
            seq: SeqNum::new(seq),
            frag: 0,
            flags: FcFlags {
                to_ds: true,
                ..Default::default()
            },
            null: false,
            body: vec![seq as u8; 40],
        }))
    }

    fn ev(radio: u16, ts: u64, bytes: Vec<u8>) -> PhyEvent {
        let wire_len = bytes.len() as u32;
        PhyEvent {
            radio: RadioId(radio),
            ts_local: ts,
            channel: Channel::of(1),
            rate: PhyRate::R11,
            rssi_dbm: -50,
            status: PhyStatus::Ok,
            wire_len,
            bytes: bytes.into(),
        }
    }

    /// The bootstrap window boundary: an event at exactly `anchor + window`
    /// is bootstrap input; the first event past it is kept for merging but
    /// excluded from bootstrap.
    #[test]
    fn bootstrap_window_splits_at_boundary() {
        let window = BootstrapConfig::default().window_us; // 1 s
        let streams = vec![
            MemoryStream::new(
                meta(0, 0),
                vec![
                    ev(0, 100, frame_bytes(1)),
                    ev(0, window, frame_bytes(2)), // exactly at the edge: in
                    ev(0, window + 1, frame_bytes(3)), // first past the edge: out
                    ev(0, window + 50, frame_bytes(4)), // never read as prefix
                ],
            ),
            MemoryStream::new(meta(1, 0), vec![ev(1, 150, frame_bytes(1))]),
        ];
        let set = SourceSet::open(streams, window).unwrap();
        // Radio 0: three events consumed (the loop stops after the first
        // out-of-window event), only two of them bootstrap input.
        assert_eq!(set.windows[0].len(), 2);
        assert_eq!(set.carries[0].len(), 1);
        assert_eq!(set.windows[1].len(), 1);
        assert!(set.carries[1].is_empty());
        assert!(set.replays.iter().all(|&r| !r), "streams are consumed-once");
        // The stream still holds the unread tail.
        assert_eq!(set.streams[0].len(), 1);

        // The out-of-window event is NOT a synchronization candidate...
        let boot = set.bootstrap(&BootstrapConfig::default()).unwrap();
        assert_eq!(boot.candidates, 3); // r0: seq 1 + seq 2; r1: seq 1
        assert_eq!(boot.components, 1);

        // ...but it IS merge input, seeded ahead of the stream.
        let (streams, seeds, refs) = set.into_merge_input();
        assert_eq!(seeds[0].len(), 3);
        assert_eq!(seeds[0][2].ts_local, window + 1);
        assert_eq!(seeds[1].len(), 1);
        assert_eq!(streams[0].len(), 1);
        // Stream sources reference their clocks at the NTP anchor.
        assert_eq!(refs, vec![0, 0]);
    }

    /// A rewindable test double: the window is served out-of-band and the
    /// stream replays everything — the disk-corpus shape of a source.
    struct ReplaySource {
        meta: RadioMeta,
        events: Vec<PhyEvent>,
    }

    impl EventSource for ReplaySource {
        type Stream = MemoryStream;

        fn open(self, window_us: u64) -> Result<OpenedRadio<MemoryStream>, FormatError> {
            let hi = self.meta.anchor_local_us.saturating_add(window_us);
            let window = self
                .events
                .iter()
                .filter(|e| e.ts_local <= hi)
                .cloned()
                .collect();
            Ok(OpenedRadio {
                meta: self.meta,
                window,
                carry: Vec::new(),
                replay: true,
                window_lo: self.meta.anchor_local_us,
                stream: MemoryStream::new(self.meta, self.events),
            })
        }
    }

    /// Replaying sources and consumed-once streams must produce identical
    /// pipelines: same bootstrap input, same merged stream, nothing seeded
    /// twice and nothing dropped.
    #[test]
    fn replay_source_matches_stream_source() {
        let window = BootstrapConfig::default().window_us;
        let mk_events = |r: u16| {
            vec![
                ev(r, 100 + u64::from(r), frame_bytes(1)),
                ev(r, window + 1 + u64::from(r), frame_bytes(3)),
                ev(r, window + 40_000 + u64::from(r), frame_bytes(7)),
            ]
        };
        let streams: Vec<MemoryStream> = (0..2)
            .map(|r| MemoryStream::new(meta(r, 0), mk_events(r)))
            .collect();
        let (jf_stream, _, rs) =
            Pipeline::run_collect(streams, &PipelineConfig::default()).unwrap();

        let replays: Vec<ReplaySource> = (0..2)
            .map(|r| ReplaySource {
                meta: meta(r, 0),
                events: mk_events(r),
            })
            .collect();
        let (jf_replay, _, rr) =
            Pipeline::run_collect(replays, &PipelineConfig::default()).unwrap();

        assert_eq!(rs.merge.events_in, rr.merge.events_in);
        assert_eq!(rs.bootstrap.candidates, rr.bootstrap.candidates);
        assert_eq!(jf_stream.len(), jf_replay.len());
        for (a, b) in jf_stream.iter().zip(&jf_replay) {
            assert_eq!(a.ts, b.ts);
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.instances, b.instances);
        }
    }

    /// End-to-end: the consumed out-of-window event still reaches the
    /// merger (no event is dropped on the floor).
    #[test]
    fn out_of_window_prefix_event_still_merged() {
        let window = BootstrapConfig::default().window_us;
        let streams = vec![
            MemoryStream::new(
                meta(0, 0),
                vec![
                    ev(0, 100, frame_bytes(1)),
                    ev(0, window + 1, frame_bytes(3)),
                ],
            ),
            MemoryStream::new(meta(1, 0), vec![ev(1, 102, frame_bytes(1))]),
        ];
        let (jframes, _, report) =
            Pipeline::run_collect(streams, &PipelineConfig::default()).unwrap();
        assert_eq!(report.merge.events_in, 3);
        assert_eq!(jframes.len(), 2);
        assert!(jframes.iter().any(|j| j.ts == window + 1));
    }

    /// One observer sees every stream the pipeline emits, with `on_flows`
    /// firing exactly once at the end — the contract every analysis (and
    /// the analysis `Suite`) builds on.
    #[test]
    fn observer_sees_every_stream_once() {
        #[derive(Default)]
        struct Probe {
            jframes: u64,
            attempts: u64,
            exchanges: u64,
            flows_calls: u64,
            flows_after_streams: bool,
        }
        impl crate::observer::PipelineObserver for Probe {
            fn on_jframe(&mut self, _jf: &JFrame) {
                self.jframes += 1;
            }
            fn on_attempt(&mut self, _a: &Attempt) {
                self.attempts += 1;
            }
            fn on_exchange(&mut self, _x: &Exchange) {
                self.exchanges += 1;
            }
            fn on_flows(&mut self, _flows: &[crate::transport::flow::FlowRecord]) {
                self.flows_calls += 1;
                self.flows_after_streams = self.jframes > 0;
            }
        }

        let streams = vec![
            MemoryStream::new(
                meta(0, 0),
                (0..40u64)
                    .map(|k| ev(0, 1_000 + k * 2_000, frame_bytes(k as u16)))
                    .collect(),
            ),
            MemoryStream::new(meta(1, 0), vec![ev(1, 1_002, frame_bytes(0))]),
        ];
        let mut probe = Probe::default();
        let report = Pipeline::run(streams, &PipelineConfig::default(), &mut probe).unwrap();
        assert_eq!(probe.jframes, report.merge.jframes_out);
        assert_eq!(probe.attempts, report.link.attempts);
        assert_eq!(probe.exchanges, report.link.exchanges);
        assert_eq!(probe.flows_calls, 1, "on_flows must fire exactly once");
        assert!(
            probe.flows_after_streams,
            "on_flows fires after the streams"
        );
        assert!(probe.jframes > 0 && probe.attempts > 0 && probe.exchanges > 0);
    }

    /// Serial and parallel drivers agree end to end (jframes, exchanges,
    /// and the figures derived from them all hang off these sinks).
    #[test]
    fn parallel_pipeline_matches_serial() {
        let mk_streams = || {
            let chans = [1u8, 6, 11, 1];
            let mut per_radio: Vec<Vec<PhyEvent>> = vec![Vec::new(); 4];
            for k in 0..30u64 {
                for (r, &c) in chans.iter().enumerate() {
                    let mut e = ev(
                        r as u16,
                        1_000 + k * 4_000 + r as u64,
                        frame_bytes((k % 4000) as u16),
                    );
                    e.channel = Channel::of(c);
                    per_radio[r].push(e);
                }
            }
            per_radio
                .into_iter()
                .enumerate()
                .map(|(r, evs)| {
                    let m = RadioMeta {
                        channel: Channel::of(chans[r]),
                        ..meta(r as u16, 0)
                    };
                    MemoryStream::new(m, evs)
                })
                .collect::<Vec<_>>()
        };
        let cfg = PipelineConfig {
            shard: ShardConfig {
                max_threads: 3,
                ..ShardConfig::default()
            },
            ..PipelineConfig::default()
        };
        let mut serial = Vec::new();
        let rs = Pipeline::run(
            mk_streams(),
            &cfg,
            OnJFrame(|jf: &JFrame| serial.push(jf.clone())),
        )
        .unwrap();
        let mut par = Vec::new();
        let rp = Pipeline::run_parallel(
            mk_streams(),
            &cfg,
            OnJFrame(|jf: &JFrame| par.push(jf.clone())),
        )
        .unwrap();
        assert_eq!(serial.len(), par.len());
        assert_eq!(rs.merge.events_in, rp.merge.events_in);
        assert_eq!(rs.merge.jframes_out, rp.merge.jframes_out);
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.ts, b.ts);
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.channel, b.channel);
            assert_eq!(a.instances, b.instances);
        }
    }
}
