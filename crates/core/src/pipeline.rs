//! The single-pass streaming pipeline: bootstrap → unify → link → transport.
//!
//! Mirrors the paper's online design (§4, requirement 3): traces are
//! consumed once, in time order, and every stage streams into the next.
//! Analyses subscribe via sinks instead of materializing the 500M-jframe
//! intermediate the paper's hardware had to contend with.

use crate::jframe::JFrame;
use crate::link::attempt::AttemptAssembler;
use crate::link::exchange::{Exchange, ExchangeAssembler, LinkStats};
use crate::sync::bootstrap::{bootstrap, BootstrapConfig, BootstrapError, BootstrapReport};
use crate::transport::flow::{FlowRecord, TransportAnalyzer, TransportStats};
use crate::unify::{MergeConfig, MergeStats, Merger};
use jigsaw_trace::format::FormatError;
use jigsaw_trace::stream::EventStream;
use jigsaw_trace::{PhyEvent, RadioMeta};

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Bootstrap parameters.
    pub bootstrap: BootstrapConfig,
    /// Unification parameters.
    pub merge: MergeConfig,
}

/// Everything the pipeline reports at the end of a run.
#[derive(Debug)]
pub struct PipelineReport {
    /// Bootstrap outcome.
    pub bootstrap: BootstrapReport,
    /// Merge statistics.
    pub merge: MergeStats,
    /// Attempt-assembly statistics.
    pub attempts: crate::link::attempt::AttemptStats,
    /// Exchange-assembly statistics (the paper's §5.1 inference rates).
    pub link: LinkStats,
    /// Per-flow transport records.
    pub flows: Vec<FlowRecord>,
    /// Aggregate transport statistics.
    pub transport: TransportStats,
}

/// Errors from a pipeline run.
#[derive(Debug)]
pub enum PipelineError {
    /// Bootstrap failed.
    Bootstrap(BootstrapError),
    /// Trace decoding failed.
    Format(FormatError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Bootstrap(e) => write!(f, "bootstrap: {e}"),
            PipelineError::Format(e) => write!(f, "trace: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<BootstrapError> for PipelineError {
    fn from(e: BootstrapError) -> Self {
        PipelineError::Bootstrap(e)
    }
}

impl From<FormatError> for PipelineError {
    fn from(e: FormatError) -> Self {
        PipelineError::Format(e)
    }
}

/// The pipeline driver.
pub struct Pipeline;

impl Pipeline {
    /// Runs the full pipeline over per-radio streams.
    ///
    /// `jframe_sink` observes every unified frame; `exchange_sink` observes
    /// every reconstructed frame exchange. Both may be no-ops.
    pub fn run<S: EventStream>(
        streams: Vec<S>,
        cfg: &PipelineConfig,
        jframe_sink: impl FnMut(&JFrame),
        exchange_sink: impl FnMut(&Exchange),
    ) -> Result<PipelineReport, PipelineError> {
        Self::run_full(streams, cfg, jframe_sink, |_| {}, exchange_sink)
    }

    /// Like [`Pipeline::run`], with an additional sink observing every
    /// *transmission attempt* (the paper's interference analysis operates
    /// on attempts, which are distinct from frame exchanges, §7.2).
    pub fn run_full<S: EventStream>(
        mut streams: Vec<S>,
        cfg: &PipelineConfig,
        mut jframe_sink: impl FnMut(&JFrame),
        mut attempt_sink: impl FnMut(&crate::link::attempt::Attempt),
        mut exchange_sink: impl FnMut(&Exchange),
    ) -> Result<PipelineReport, PipelineError> {
        // --- phase 1: read the bootstrap window from every trace ---
        let metas: Vec<RadioMeta> = streams.iter().map(|s| s.meta()).collect();
        let mut prefixes: Vec<Vec<PhyEvent>> = Vec::with_capacity(streams.len());
        for s in streams.iter_mut() {
            let meta = s.meta();
            let hi = meta.anchor_local_us.saturating_add(cfg.bootstrap.window_us);
            let mut prefix = Vec::new();
            while let Some(ev) = s.next_event()? {
                let stop = ev.ts_local > hi;
                prefix.push(ev);
                if stop {
                    break;
                }
            }
            prefixes.push(prefix);
        }

        // --- phase 2: bootstrap synchronization ---
        let boot = bootstrap(&metas, &prefixes, &cfg.bootstrap)?;

        // --- phase 3: streaming merge + reconstruction ---
        let mut merger = Merger::new(streams, &boot.offsets, cfg.merge.clone());
        for (r, prefix) in prefixes.into_iter().enumerate() {
            merger.seed_pending(r, prefix);
        }

        let mut attempts = AttemptAssembler::new();
        let mut exchanges = ExchangeAssembler::new();
        let mut transport = TransportAnalyzer::new();
        let mut attempt_buf = Vec::new();
        let mut exchange_buf = Vec::new();

        // Exchanges close out of order (a delivered exchange closes at its
        // ACK; an ambiguous one lingers to the 500 ms timeout). Transport
        // reconstruction needs them in transmission-time order, so they sit
        // in a small reordering heap until a 1 s watermark passes them.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut reorder: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut reorder_store: std::collections::HashMap<u64, Exchange> =
            std::collections::HashMap::new();
        let mut reorder_seq = 0u64;
        const REORDER_HORIZON_US: u64 = 1_000_000;

        let merge_stats = merger.run(|jf| {
            jframe_sink(&jf);
            attempts.push(&jf, &mut attempt_buf);
            for a in attempt_buf.drain(..) {
                attempt_sink(&a);
                exchanges.push(a, &mut exchange_buf);
            }
            for x in exchange_buf.drain(..) {
                let key = (x.first_ts, reorder_seq);
                reorder.push(Reverse(key));
                reorder_store.insert(reorder_seq, x);
                reorder_seq += 1;
            }
            let watermark = jf.ts.saturating_sub(REORDER_HORIZON_US);
            while let Some(&Reverse((ts, seq))) = reorder.peek() {
                if ts >= watermark {
                    break;
                }
                reorder.pop();
                let x = reorder_store.remove(&seq).expect("stored exchange");
                transport.push(&x);
                exchange_sink(&x);
            }
        })?;
        attempts.finish(&mut attempt_buf);
        for a in attempt_buf.drain(..) {
            attempt_sink(&a);
            exchanges.push(a, &mut exchange_buf);
        }
        exchanges.finish(&mut exchange_buf);
        for x in exchange_buf.drain(..) {
            let key = (x.first_ts, reorder_seq);
            reorder.push(Reverse(key));
            reorder_store.insert(reorder_seq, x);
            reorder_seq += 1;
        }
        while let Some(Reverse((_, seq))) = reorder.pop() {
            let x = reorder_store.remove(&seq).expect("stored exchange");
            transport.push(&x);
            exchange_sink(&x);
        }
        let (flows, transport_stats) = transport.finish();

        Ok(PipelineReport {
            bootstrap: boot,
            merge: merge_stats,
            attempts: attempts.stats.clone(),
            link: exchanges.stats.clone(),
            flows,
            transport: transport_stats,
        })
    }

    /// Convenience wrapper that materializes jframes and exchanges
    /// (small runs and tests only).
    pub fn run_collect<S: EventStream>(
        streams: Vec<S>,
        cfg: &PipelineConfig,
    ) -> Result<(Vec<JFrame>, Vec<Exchange>, PipelineReport), PipelineError> {
        let mut jframes = Vec::new();
        let mut xs = Vec::new();
        let report = Self::run(
            streams,
            cfg,
            |jf| jframes.push(jf.clone()),
            |x| xs.push(x.clone()),
        )?;
        Ok((jframes, xs, report))
    }
}
