//! The single-pass streaming pipeline: bootstrap → unify → link → transport.
//!
//! Mirrors the paper's online design (§4, requirement 3): traces are
//! consumed once, in time order, and every stage streams into the next.
//! Analyses subscribe via sinks instead of materializing the 500M-jframe
//! intermediate the paper's hardware had to contend with.
//!
//! Two drivers share every stage:
//! * [`Pipeline::run`] / [`Pipeline::run_full`] — the serial merger;
//! * [`Pipeline::run_parallel`] / [`Pipeline::run_parallel_full`] — the
//!   channel-sharded merge ([`crate::shard`]): one merge thread per channel
//!   shard, with link/transport reconstruction consuming the K-way-merged
//!   jframe stream on the calling thread (so merging and reconstruction
//!   overlap). Output is jframe-for-jframe identical to the serial driver.

use crate::jframe::JFrame;
use crate::link::attempt::{Attempt, AttemptAssembler, AttemptStats};
use crate::link::exchange::{Exchange, ExchangeAssembler, LinkStats};
use crate::shard::ShardConfig;
use crate::sync::bootstrap::{bootstrap, BootstrapConfig, BootstrapError, BootstrapReport};
use crate::transport::flow::{FlowRecord, TransportAnalyzer, TransportStats};
use crate::unify::{MergeConfig, MergeStats, Merger};
use jigsaw_trace::format::FormatError;
use jigsaw_trace::stream::EventStream;
use jigsaw_trace::{PhyEvent, RadioMeta};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Bootstrap parameters.
    pub bootstrap: BootstrapConfig,
    /// Unification parameters.
    pub merge: MergeConfig,
    /// Channel-sharding parameters (the parallel drivers only).
    pub shard: ShardConfig,
}

/// Everything the pipeline reports at the end of a run.
#[derive(Debug)]
pub struct PipelineReport {
    /// Bootstrap outcome.
    pub bootstrap: BootstrapReport,
    /// Merge statistics.
    pub merge: MergeStats,
    /// Attempt-assembly statistics.
    pub attempts: AttemptStats,
    /// Exchange-assembly statistics (the paper's §5.1 inference rates).
    pub link: LinkStats,
    /// Per-flow transport records.
    pub flows: Vec<FlowRecord>,
    /// Aggregate transport statistics.
    pub transport: TransportStats,
}

/// Errors from a pipeline run.
#[derive(Debug)]
pub enum PipelineError {
    /// Bootstrap failed.
    Bootstrap(BootstrapError),
    /// Trace decoding failed.
    Format(FormatError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Bootstrap(e) => write!(f, "bootstrap: {e}"),
            PipelineError::Format(e) => write!(f, "trace: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<BootstrapError> for PipelineError {
    fn from(e: BootstrapError) -> Self {
        PipelineError::Bootstrap(e)
    }
}

impl From<FormatError> for PipelineError {
    fn from(e: FormatError) -> Self {
        PipelineError::Format(e)
    }
}

/// The per-radio bootstrap prefix: every event pulled off the stream while
/// locating the end of the bootstrap window, plus how many of them actually
/// lie *inside* the window.
///
/// Reading stops at the first event past the window, and that event has
/// already been consumed from the stream — it must be kept for merger
/// seeding (dropping it would lose an event) but must NOT feed offset
/// estimation: it is outside the NTP-delimited window `bootstrap()`
/// contracts for, and one out-of-window reference frame is enough to skew
/// a synchronization set.
pub(crate) struct BootstrapPrefixes {
    /// Radio metadata, one per stream.
    pub metas: Vec<RadioMeta>,
    /// All consumed events per radio (seed these into the merger).
    pub events: Vec<Vec<PhyEvent>>,
    /// Per radio: how many leading `events` fall within the window.
    pub in_window: Vec<usize>,
}

impl BootstrapPrefixes {
    /// Reads the bootstrap window from every stream.
    pub fn read<S: EventStream>(streams: &mut [S], window_us: u64) -> Result<Self, FormatError> {
        let mut metas = Vec::with_capacity(streams.len());
        let mut events = Vec::with_capacity(streams.len());
        let mut in_window = Vec::with_capacity(streams.len());
        for s in streams.iter_mut() {
            let meta = s.meta();
            let hi = meta.anchor_local_us.saturating_add(window_us);
            let mut prefix: Vec<PhyEvent> = Vec::new();
            while let Some(ev) = s.next_event()? {
                let past_window = ev.ts_local > hi;
                prefix.push(ev);
                if past_window {
                    break;
                }
            }
            let n = match prefix.last() {
                Some(last) if last.ts_local > hi => prefix.len() - 1,
                _ => prefix.len(),
            };
            metas.push(meta);
            events.push(prefix);
            in_window.push(n);
        }
        Ok(BootstrapPrefixes {
            metas,
            events,
            in_window,
        })
    }

    /// Runs bootstrap over the in-window slices only.
    pub fn bootstrap(&self, cfg: &BootstrapConfig) -> Result<BootstrapReport, BootstrapError> {
        let views: Vec<&[PhyEvent]> = self
            .events
            .iter()
            .zip(&self.in_window)
            .map(|(evs, &n)| &evs[..n])
            .collect();
        bootstrap(&self.metas, &views, cfg)
    }
}

/// Everything downstream of unification: attempt assembly → exchange
/// assembly → transport reconstruction, plus the exchange reordering heap
/// (exchanges close out of order — a delivered exchange closes at its ACK,
/// an ambiguous one lingers to the 500 ms timeout — but transport
/// reconstruction needs transmission-time order, so closed exchanges sit in
/// a small heap until a 1 s watermark passes them).
///
/// Both the serial and the sharded drivers feed this consumer, so parallel
/// runs reconstruct exactly what serial runs reconstruct.
struct Downstream<FJ, FA, FX> {
    attempts: AttemptAssembler,
    exchanges: ExchangeAssembler,
    transport: TransportAnalyzer,
    attempt_buf: Vec<Attempt>,
    exchange_buf: Vec<Exchange>,
    reorder: BinaryHeap<Reverse<(u64, u64)>>,
    reorder_store: HashMap<u64, Exchange>,
    reorder_seq: u64,
    jframe_sink: FJ,
    attempt_sink: FA,
    exchange_sink: FX,
}

const REORDER_HORIZON_US: u64 = 1_000_000;

impl<FJ, FA, FX> Downstream<FJ, FA, FX>
where
    FJ: FnMut(&JFrame),
    FA: FnMut(&Attempt),
    FX: FnMut(&Exchange),
{
    fn new(jframe_sink: FJ, attempt_sink: FA, exchange_sink: FX) -> Self {
        Downstream {
            attempts: AttemptAssembler::new(),
            exchanges: ExchangeAssembler::new(),
            transport: TransportAnalyzer::new(),
            attempt_buf: Vec::new(),
            exchange_buf: Vec::new(),
            reorder: BinaryHeap::new(),
            reorder_store: HashMap::new(),
            reorder_seq: 0,
            jframe_sink,
            attempt_sink,
            exchange_sink,
        }
    }

    fn enqueue_closed(&mut self) {
        for x in self.exchange_buf.drain(..) {
            self.reorder.push(Reverse((x.first_ts, self.reorder_seq)));
            self.reorder_store.insert(self.reorder_seq, x);
            self.reorder_seq += 1;
        }
    }

    fn observe(&mut self, jf: &JFrame) {
        (self.jframe_sink)(jf);
        self.attempts.push(jf, &mut self.attempt_buf);
        for a in self.attempt_buf.drain(..) {
            (self.attempt_sink)(&a);
            self.exchanges.push(a, &mut self.exchange_buf);
        }
        self.enqueue_closed();
        let watermark = jf.ts.saturating_sub(REORDER_HORIZON_US);
        while let Some(&Reverse((ts, seq))) = self.reorder.peek() {
            if ts >= watermark {
                break;
            }
            self.reorder.pop();
            let x = self.reorder_store.remove(&seq).expect("stored exchange");
            self.transport.push(&x);
            (self.exchange_sink)(&x);
        }
    }

    fn finish(mut self) -> (AttemptStats, LinkStats, Vec<FlowRecord>, TransportStats) {
        self.attempts.finish(&mut self.attempt_buf);
        for a in self.attempt_buf.drain(..) {
            (self.attempt_sink)(&a);
            self.exchanges.push(a, &mut self.exchange_buf);
        }
        self.exchanges.finish(&mut self.exchange_buf);
        self.enqueue_closed();
        while let Some(Reverse((_, seq))) = self.reorder.pop() {
            let x = self.reorder_store.remove(&seq).expect("stored exchange");
            self.transport.push(&x);
            (self.exchange_sink)(&x);
        }
        let (flows, transport_stats) = self.transport.finish();
        (
            self.attempts.stats.clone(),
            self.exchanges.stats.clone(),
            flows,
            transport_stats,
        )
    }
}

/// The pipeline driver.
pub struct Pipeline;

impl Pipeline {
    /// Runs the full pipeline over per-radio streams.
    ///
    /// `jframe_sink` observes every unified frame; `exchange_sink` observes
    /// every reconstructed frame exchange. Both may be no-ops.
    pub fn run<S: EventStream>(
        streams: Vec<S>,
        cfg: &PipelineConfig,
        jframe_sink: impl FnMut(&JFrame),
        exchange_sink: impl FnMut(&Exchange),
    ) -> Result<PipelineReport, PipelineError> {
        Self::run_full(streams, cfg, jframe_sink, |_| {}, exchange_sink)
    }

    /// Like [`Pipeline::run`], with an additional sink observing every
    /// *transmission attempt* (the paper's interference analysis operates
    /// on attempts, which are distinct from frame exchanges, §7.2).
    pub fn run_full<S: EventStream>(
        mut streams: Vec<S>,
        cfg: &PipelineConfig,
        jframe_sink: impl FnMut(&JFrame),
        attempt_sink: impl FnMut(&Attempt),
        exchange_sink: impl FnMut(&Exchange),
    ) -> Result<PipelineReport, PipelineError> {
        let prefixes = BootstrapPrefixes::read(&mut streams, cfg.bootstrap.window_us)?;
        let boot = prefixes.bootstrap(&cfg.bootstrap)?;

        let mut merger = Merger::new(streams, &boot.offsets, cfg.merge.clone());
        for (r, prefix) in prefixes.events.into_iter().enumerate() {
            merger.seed_pending(r, prefix);
        }
        let mut ds = Downstream::new(jframe_sink, attempt_sink, exchange_sink);
        let merge_stats = merger.run(|jf| ds.observe(&jf))?;
        let (attempts, link, flows, transport) = ds.finish();

        Ok(PipelineReport {
            bootstrap: boot,
            merge: merge_stats,
            attempts,
            link,
            flows,
            transport,
        })
    }

    /// [`Pipeline::run`] with the channel-sharded parallel merge
    /// ([`crate::shard`]): bootstrap is unchanged (it is global — monitor
    /// clocks bridge channels), the merge fans out one thread per channel
    /// shard, and reconstruction consumes the re-merged stream here on the
    /// calling thread. Jframe/exchange output is identical to [`Pipeline::run`].
    pub fn run_parallel<S>(
        streams: Vec<S>,
        cfg: &PipelineConfig,
        jframe_sink: impl FnMut(&JFrame),
        exchange_sink: impl FnMut(&Exchange),
    ) -> Result<PipelineReport, PipelineError>
    where
        S: EventStream + Send + 'static,
    {
        Self::run_parallel_full(streams, cfg, jframe_sink, |_| {}, exchange_sink)
    }

    /// [`Pipeline::run_full`] on the channel-sharded merge.
    pub fn run_parallel_full<S>(
        mut streams: Vec<S>,
        cfg: &PipelineConfig,
        jframe_sink: impl FnMut(&JFrame),
        attempt_sink: impl FnMut(&Attempt),
        exchange_sink: impl FnMut(&Exchange),
    ) -> Result<PipelineReport, PipelineError>
    where
        S: EventStream + Send + 'static,
    {
        let prefixes = BootstrapPrefixes::read(&mut streams, cfg.bootstrap.window_us)?;
        let boot = prefixes.bootstrap(&cfg.bootstrap)?;

        let mut ds = Downstream::new(jframe_sink, attempt_sink, exchange_sink);
        let merge_stats = crate::shard::run_sharded(
            streams,
            &boot.offsets,
            prefixes.events,
            &cfg.merge,
            &cfg.shard,
            |jf| ds.observe(&jf),
        )?;
        let (attempts, link, flows, transport) = ds.finish();

        Ok(PipelineReport {
            bootstrap: boot,
            merge: merge_stats,
            attempts,
            link,
            flows,
            transport,
        })
    }

    /// Bootstrap + serial merge only — no link/transport reconstruction.
    /// Benchmarks isolate the merge stage with this.
    pub fn merge_only<S: EventStream>(
        mut streams: Vec<S>,
        cfg: &PipelineConfig,
        sink: impl FnMut(JFrame),
    ) -> Result<(BootstrapReport, MergeStats), PipelineError> {
        let prefixes = BootstrapPrefixes::read(&mut streams, cfg.bootstrap.window_us)?;
        let boot = prefixes.bootstrap(&cfg.bootstrap)?;
        let mut merger = Merger::new(streams, &boot.offsets, cfg.merge.clone());
        for (r, prefix) in prefixes.events.into_iter().enumerate() {
            merger.seed_pending(r, prefix);
        }
        let stats = merger.run(sink)?;
        Ok((boot, stats))
    }

    /// Bootstrap + channel-sharded merge only (see [`Pipeline::merge_only`]).
    pub fn merge_only_parallel<S>(
        mut streams: Vec<S>,
        cfg: &PipelineConfig,
        sink: impl FnMut(JFrame),
    ) -> Result<(BootstrapReport, MergeStats), PipelineError>
    where
        S: EventStream + Send + 'static,
    {
        let prefixes = BootstrapPrefixes::read(&mut streams, cfg.bootstrap.window_us)?;
        let boot = prefixes.bootstrap(&cfg.bootstrap)?;
        let stats = crate::shard::run_sharded(
            streams,
            &boot.offsets,
            prefixes.events,
            &cfg.merge,
            &cfg.shard,
            sink,
        )?;
        Ok((boot, stats))
    }

    /// Convenience wrapper that materializes jframes and exchanges
    /// (small runs and tests only).
    pub fn run_collect<S: EventStream>(
        streams: Vec<S>,
        cfg: &PipelineConfig,
    ) -> Result<(Vec<JFrame>, Vec<Exchange>, PipelineReport), PipelineError> {
        let mut jframes = Vec::new();
        let mut xs = Vec::new();
        let report = Self::run(
            streams,
            cfg,
            |jf| jframes.push(jf.clone()),
            |x| xs.push(x.clone()),
        )?;
        Ok((jframes, xs, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_ieee80211::fc::FcFlags;
    use jigsaw_ieee80211::frame::{DataFrame, Frame};
    use jigsaw_ieee80211::wire::serialize_frame;
    use jigsaw_ieee80211::{Channel, MacAddr, PhyRate, SeqNum};
    use jigsaw_trace::stream::MemoryStream;
    use jigsaw_trace::{MonitorId, PhyStatus, RadioId};

    fn meta(radio: u16, anchor_local: u64) -> RadioMeta {
        RadioMeta {
            radio: RadioId(radio),
            monitor: MonitorId(radio),
            channel: Channel::of(1),
            anchor_wall_us: 0,
            anchor_local_us: anchor_local,
        }
    }

    fn frame_bytes(seq: u16) -> Vec<u8> {
        serialize_frame(&Frame::Data(DataFrame {
            duration: 44,
            addr1: MacAddr::local(1, 1),
            addr2: MacAddr::local(2, 2),
            addr3: MacAddr::local(3, 3),
            seq: SeqNum::new(seq),
            frag: 0,
            flags: FcFlags {
                to_ds: true,
                ..Default::default()
            },
            null: false,
            body: vec![seq as u8; 40],
        }))
    }

    fn ev(radio: u16, ts: u64, bytes: Vec<u8>) -> PhyEvent {
        let wire_len = bytes.len() as u32;
        PhyEvent {
            radio: RadioId(radio),
            ts_local: ts,
            channel: Channel::of(1),
            rate: PhyRate::R11,
            rssi_dbm: -50,
            status: PhyStatus::Ok,
            wire_len,
            bytes,
        }
    }

    /// The bootstrap window boundary: an event at exactly `anchor + window`
    /// is bootstrap input; the first event past it is kept for merging but
    /// excluded from bootstrap.
    #[test]
    fn bootstrap_prefix_splits_at_window_boundary() {
        let window = BootstrapConfig::default().window_us; // 1 s
        let mut streams = vec![
            MemoryStream::new(
                meta(0, 0),
                vec![
                    ev(0, 100, frame_bytes(1)),
                    ev(0, window, frame_bytes(2)), // exactly at the edge: in
                    ev(0, window + 1, frame_bytes(3)), // first past the edge: out
                    ev(0, window + 50, frame_bytes(4)), // never read as prefix
                ],
            ),
            MemoryStream::new(meta(1, 0), vec![ev(1, 150, frame_bytes(1))]),
        ];
        let p = BootstrapPrefixes::read(&mut streams, window).unwrap();
        // Radio 0: three events consumed (the loop stops after the first
        // out-of-window event), only two of them bootstrap input.
        assert_eq!(p.events[0].len(), 3);
        assert_eq!(p.in_window[0], 2);
        assert_eq!(p.events[1].len(), 1);
        assert_eq!(p.in_window[1], 1);
        // The stream still holds the unread tail.
        assert_eq!(streams[0].len(), 1);

        // The out-of-window event is NOT a synchronization candidate...
        let boot = p.bootstrap(&BootstrapConfig::default()).unwrap();
        assert_eq!(boot.candidates, 3); // r0: seq 1 + seq 2; r1: seq 1
        assert_eq!(boot.components, 1);
    }

    /// End-to-end: the consumed out-of-window event still reaches the
    /// merger (no event is dropped on the floor).
    #[test]
    fn out_of_window_prefix_event_still_merged() {
        let window = BootstrapConfig::default().window_us;
        let streams = vec![
            MemoryStream::new(
                meta(0, 0),
                vec![
                    ev(0, 100, frame_bytes(1)),
                    ev(0, window + 1, frame_bytes(3)),
                ],
            ),
            MemoryStream::new(meta(1, 0), vec![ev(1, 102, frame_bytes(1))]),
        ];
        let (jframes, _, report) =
            Pipeline::run_collect(streams, &PipelineConfig::default()).unwrap();
        assert_eq!(report.merge.events_in, 3);
        assert_eq!(jframes.len(), 2);
        assert!(jframes.iter().any(|j| j.ts == window + 1));
    }

    /// Serial and parallel drivers agree end to end (jframes, exchanges,
    /// and the figures derived from them all hang off these sinks).
    #[test]
    fn parallel_pipeline_matches_serial() {
        let mk_streams = || {
            let chans = [1u8, 6, 11, 1];
            let mut per_radio: Vec<Vec<PhyEvent>> = vec![Vec::new(); 4];
            for k in 0..30u64 {
                for (r, &c) in chans.iter().enumerate() {
                    let mut e = ev(
                        r as u16,
                        1_000 + k * 4_000 + r as u64,
                        frame_bytes((k % 4000) as u16),
                    );
                    e.channel = Channel::of(c);
                    per_radio[r].push(e);
                }
            }
            per_radio
                .into_iter()
                .enumerate()
                .map(|(r, evs)| {
                    let m = RadioMeta {
                        channel: Channel::of(chans[r]),
                        ..meta(r as u16, 0)
                    };
                    MemoryStream::new(m, evs)
                })
                .collect::<Vec<_>>()
        };
        let cfg = PipelineConfig {
            shard: ShardConfig {
                max_threads: 3,
                ..ShardConfig::default()
            },
            ..PipelineConfig::default()
        };
        let mut serial = Vec::new();
        let rs = Pipeline::run(mk_streams(), &cfg, |jf| serial.push(jf.clone()), |_| {}).unwrap();
        let mut par = Vec::new();
        let rp =
            Pipeline::run_parallel(mk_streams(), &cfg, |jf| par.push(jf.clone()), |_| {}).unwrap();
        assert_eq!(serial.len(), par.len());
        assert_eq!(rs.merge.events_in, rp.merge.events_in);
        assert_eq!(rs.merge.jframes_out, rp.merge.jframes_out);
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.ts, b.ts);
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.channel, b.channel);
            assert_eq!(a.instances, b.instances);
        }
    }
}
