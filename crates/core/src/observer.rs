//! The pipeline→analysis boundary: one observer trait for every stream
//! the pipeline emits.
//!
//! The paper's evaluation is a set of analyses that all consume the same
//! unified jframe stream (plus the attempt, exchange, and flow streams
//! derived from it). [`PipelineObserver`] is the single subscription
//! point: every hook is default-no-op, so an analysis implements exactly
//! the hooks it needs and the drivers
//! ([`Pipeline::run`](crate::pipeline::Pipeline::run) and friends) take
//! *one* observer instead of a closure per stream.
//!
//! Composition is structural:
//!
//! * `&mut O` and `Box<O>` are observers whenever `O` is — pass a
//!   borrowed analysis and keep it afterwards;
//! * tuples `(A, B, …)` up to arity 8 fan every event out to each
//!   element, in order — wire several analyses into one pass without any
//!   registry;
//! * the [`OnJFrame`] / [`OnAttempt`] / [`OnExchange`] / [`OnFlows`]
//!   adapters lift a plain closure into a single-hook observer, keeping
//!   the old sink-closure ergonomics;
//! * `()` is the null observer.
//!
//! ```
//! use jigsaw_core::observer::{OnExchange, OnJFrame, PipelineObserver};
//!
//! let mut jframes = 0u64;
//! let mut exchanges = 0u64;
//! let mut obs = (
//!     OnJFrame(|_jf: &jigsaw_core::JFrame| jframes += 1),
//!     OnExchange(|_x: &jigsaw_core::link::exchange::Exchange| exchanges += 1),
//! );
//! // `obs` implements PipelineObserver and can be handed to Pipeline::run.
//! # let _ = &mut obs;
//! ```

use crate::jframe::JFrame;
use crate::link::attempt::Attempt;
use crate::link::exchange::Exchange;
use crate::transport::flow::FlowRecord;

/// A subscriber to the pipeline's output streams.
///
/// Hook order for one run: `on_jframe` fires for every unified frame in
/// universal-time order; `on_attempt` fires for every assembled
/// transmission attempt; `on_exchange` fires for every closed frame
/// exchange in transmission-time order; `on_flows` fires exactly once, at
/// the end of the run, with every reconstructed flow record (order
/// unspecified — treat it as a set). Merge-only drivers fire `on_jframe`
/// only.
pub trait PipelineObserver {
    /// Observes one unified frame.
    fn on_jframe(&mut self, _jf: &JFrame) {}

    /// Observes one transmission attempt (the paper's §7.2 interference
    /// analysis operates on attempts, which are distinct from exchanges).
    fn on_attempt(&mut self, _a: &Attempt) {}

    /// Observes one reconstructed frame exchange.
    fn on_exchange(&mut self, _x: &Exchange) {}

    /// Observes the finished per-flow transport records, once, at the end
    /// of the run.
    fn on_flows(&mut self, _flows: &[FlowRecord]) {}
}

/// The null observer.
impl PipelineObserver for () {}

impl<O: PipelineObserver + ?Sized> PipelineObserver for &mut O {
    fn on_jframe(&mut self, jf: &JFrame) {
        (**self).on_jframe(jf);
    }
    fn on_attempt(&mut self, a: &Attempt) {
        (**self).on_attempt(a);
    }
    fn on_exchange(&mut self, x: &Exchange) {
        (**self).on_exchange(x);
    }
    fn on_flows(&mut self, flows: &[FlowRecord]) {
        (**self).on_flows(flows);
    }
}

impl<O: PipelineObserver + ?Sized> PipelineObserver for Box<O> {
    fn on_jframe(&mut self, jf: &JFrame) {
        (**self).on_jframe(jf);
    }
    fn on_attempt(&mut self, a: &Attempt) {
        (**self).on_attempt(a);
    }
    fn on_exchange(&mut self, x: &Exchange) {
        (**self).on_exchange(x);
    }
    fn on_flows(&mut self, flows: &[FlowRecord]) {
        (**self).on_flows(flows);
    }
}

/// Lifts a `FnMut(&JFrame)` closure into a jframe-only observer.
pub struct OnJFrame<F>(pub F);

impl<F: FnMut(&JFrame)> PipelineObserver for OnJFrame<F> {
    fn on_jframe(&mut self, jf: &JFrame) {
        (self.0)(jf);
    }
}

/// Lifts a `FnMut(&Attempt)` closure into an attempt-only observer.
pub struct OnAttempt<F>(pub F);

impl<F: FnMut(&Attempt)> PipelineObserver for OnAttempt<F> {
    fn on_attempt(&mut self, a: &Attempt) {
        (self.0)(a);
    }
}

/// Lifts a `FnMut(&Exchange)` closure into an exchange-only observer.
pub struct OnExchange<F>(pub F);

impl<F: FnMut(&Exchange)> PipelineObserver for OnExchange<F> {
    fn on_exchange(&mut self, x: &Exchange) {
        (self.0)(x);
    }
}

/// Lifts a `FnMut(&[FlowRecord])` closure into a flows-only observer.
pub struct OnFlows<F>(pub F);

impl<F: FnMut(&[FlowRecord])> PipelineObserver for OnFlows<F> {
    fn on_flows(&mut self, flows: &[FlowRecord]) {
        (self.0)(flows);
    }
}

macro_rules! impl_observer_tuple {
    ($($name:ident),+) => {
        impl<$($name: PipelineObserver),+> PipelineObserver for ($($name,)+) {
            fn on_jframe(&mut self, jf: &JFrame) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_jframe(jf);)+
            }
            fn on_attempt(&mut self, a: &Attempt) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_attempt(a);)+
            }
            fn on_exchange(&mut self, x: &Exchange) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_exchange(x);)+
            }
            fn on_flows(&mut self, flows: &[FlowRecord]) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.on_flows(flows);)+
            }
        }
    };
}

impl_observer_tuple!(A, B);
impl_observer_tuple!(A, B, C);
impl_observer_tuple!(A, B, C, D);
impl_observer_tuple!(A, B, C, D, E);
impl_observer_tuple!(A, B, C, D, E, F);
impl_observer_tuple!(A, B, C, D, E, F, G);
impl_observer_tuple!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_ieee80211::{Channel, PhyRate};

    fn jf() -> JFrame {
        JFrame {
            ts: 1,
            bytes: Default::default(),
            wire_len: 0,
            rate: PhyRate::R1,
            channel: Channel::of(1),
            instances: Default::default(),
            dispersion: 0,
            valid: false,
            unique: false,
        }
    }

    #[derive(Default)]
    struct Counter {
        jframes: u64,
        flows: u64,
    }

    impl PipelineObserver for Counter {
        fn on_jframe(&mut self, _jf: &JFrame) {
            self.jframes += 1;
        }
        fn on_flows(&mut self, flows: &[FlowRecord]) {
            self.flows += flows.len() as u64;
        }
    }

    #[test]
    fn tuple_fans_out_in_order() {
        let trace = std::cell::RefCell::new(Vec::new());
        {
            let mut obs = (
                OnJFrame(|_: &JFrame| trace.borrow_mut().push("a")),
                OnJFrame(|_: &JFrame| trace.borrow_mut().push("b")),
            );
            obs.on_jframe(&jf());
            obs.on_jframe(&jf());
            // Default hooks are no-ops on the other streams.
            obs.on_flows(&[]);
        }
        assert_eq!(trace.into_inner(), vec!["a", "b", "a", "b"]);
    }

    #[test]
    fn mut_ref_and_box_delegate() {
        let mut c = Counter::default();
        {
            let obs: &mut dyn PipelineObserver = &mut c;
            obs.on_jframe(&jf());
            obs.on_flows(&[]);
        }
        assert_eq!(c.jframes, 1);
        let mut boxed: Box<dyn PipelineObserver> = Box::new(Counter::default());
        boxed.on_jframe(&jf());
        // Null observer compiles and does nothing.
        let mut null = ();
        null.on_jframe(&jf());
    }

    #[test]
    fn borrowed_analyses_survive_the_pass() {
        let mut a = Counter::default();
        let mut b = Counter::default();
        {
            let mut obs = (&mut a, &mut b);
            obs.on_jframe(&jf());
        }
        // Both still usable after the observer is dropped.
        assert_eq!(a.jframes + b.jframes, 2);
    }
}
