//! Baseline mergers the benchmarks compare Jigsaw against.
//!
//! * [`naive_merge`] — a `mergecap`-style merge: interleave all traces by
//!   their **raw local timestamps** and group identical frames that land
//!   within a window. With free-running radio clocks (offsets of hours),
//!   duplicates never line up: the output is bloated, misordered, and
//!   useless for timing analysis. This is the tool the paper's introduction
//!   implicitly argues against.
//! * [`yeo_merge`] — a Yeo-et-al.-style merge: synchronize once from
//!   reference frames (beacons) at the start, then trust the clocks — no
//!   continuous resynchronization, no skew/drift management. Fine for three
//!   radios and short traces; the paper's §4.2 explains why it degrades at
//!   building scale.

use crate::jframe::JFrame;
use crate::sync::bootstrap::{BootstrapConfig, BootstrapReport};
use crate::unify::{MergeConfig, MergeStats, Merger};
use jigsaw_trace::format::FormatError;
use jigsaw_trace::stream::EventStream;
use jigsaw_trace::PhyEvent;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of a baseline merge.
#[derive(Debug, Default)]
pub struct BaselineStats {
    /// Events consumed.
    pub events_in: u64,
    /// "jframes" produced.
    pub jframes_out: u64,
    /// Events that actually unified with a duplicate.
    pub instances_unified: u64,
}

/// mergecap-style merge: k-way interleave on raw local timestamps, grouping
/// byte-identical events within `window_us` of each other.
pub fn naive_merge<S: EventStream>(
    mut streams: Vec<S>,
    window_us: u64,
    mut sink: impl FnMut(&JFrame),
) -> Result<BaselineStats, FormatError> {
    let mut stats = BaselineStats::default();
    // K-way merge by raw ts_local.
    let mut heads: Vec<Option<PhyEvent>> = Vec::with_capacity(streams.len());
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for (i, s) in streams.iter_mut().enumerate() {
        let ev = s.next_event()?;
        if let Some(e) = &ev {
            heap.push(Reverse((e.ts_local, i)));
        }
        heads.push(ev);
    }
    // Sliding group of recent events (within window of the newest).
    let mut group: Vec<PhyEvent> = Vec::new();

    let flush_group =
        |group: &mut Vec<PhyEvent>, stats: &mut BaselineStats, sink: &mut dyn FnMut(&JFrame)| {
            // Group identical contents.
            let mut used = vec![false; group.len()];
            for i in 0..group.len() {
                if used[i] {
                    continue;
                }
                let mut members = vec![i];
                for j in (i + 1)..group.len() {
                    if !used[j]
                        && group[j].bytes == group[i].bytes
                        && group[j].wire_len == group[i].wire_len
                        && group[j].rate == group[i].rate
                    {
                        used[j] = true;
                        members.push(j);
                    }
                }
                used[i] = true;
                if members.len() > 1 {
                    stats.instances_unified += members.len() as u64;
                }
                let rep = &group[members[0]];
                let instances = members
                    .iter()
                    .map(|&k| {
                        let e = &group[k];
                        crate::jframe::Instance {
                            radio: e.radio,
                            ts_local: e.ts_local,
                            ts_universal: e.ts_local, // no sync: local IS "universal"
                            rssi_dbm: e.rssi_dbm,
                            status: e.status,
                        }
                    })
                    .collect::<crate::jframe::Instances>();
                let min = instances.iter().map(|i| i.ts_universal).min().unwrap_or(0);
                let max = instances.iter().map(|i| i.ts_universal).max().unwrap_or(0);
                stats.jframes_out += 1;
                sink(&JFrame {
                    ts: rep.ts_local,
                    bytes: rep.bytes.handle(),
                    wire_len: rep.wire_len,
                    rate: rep.rate,
                    channel: rep.channel,
                    instances,
                    dispersion: max - min,
                    valid: rep.status == jigsaw_trace::PhyStatus::Ok,
                    unique: false,
                });
            }
            group.clear();
        };

    while let Some(Reverse((ts, i))) = heap.pop() {
        let ev = heads[i].take().expect("head present");
        debug_assert_eq!(ev.ts_local, ts);
        heads[i] = streams[i].next_event()?;
        if let Some(e) = &heads[i] {
            heap.push(Reverse((e.ts_local, i)));
        }
        stats.events_in += 1;
        if let Some(first) = group.first() {
            if ts.saturating_sub(first.ts_local) > window_us {
                flush_group(&mut group, &mut stats, &mut sink);
            }
        }
        group.push(ev);
    }
    flush_group(&mut group, &mut stats, &mut sink);
    Ok(stats)
}

/// Yeo-style merge: bootstrap once (beacon references), then merge with
/// continuous resynchronization disabled.
pub fn yeo_merge<S: EventStream>(
    streams: Vec<S>,
    bootstrap_cfg: &BootstrapConfig,
    merge_cfg: &MergeConfig,
    sink: impl FnMut(JFrame),
) -> Result<(MergeStats, BootstrapReport), crate::pipeline::PipelineError> {
    let set = crate::pipeline::SourceSet::open(streams, bootstrap_cfg.window_us)?;
    let boot = set.bootstrap(bootstrap_cfg)?;
    let cfg = MergeConfig {
        resync_enabled: false,
        ..merge_cfg.clone()
    };
    let (streams, seeds, refs) = set.into_merge_input();
    let mut merger = Merger::new_at(streams, &boot.offsets, &refs, cfg);
    for (r, seed) in seeds.into_iter().enumerate() {
        merger.seed_pending(r, seed);
    }
    let stats = merger.run(sink)?;
    Ok((stats, boot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_ieee80211::fc::FcFlags;
    use jigsaw_ieee80211::frame::{DataFrame, Frame};
    use jigsaw_ieee80211::wire::serialize_frame;
    use jigsaw_ieee80211::{Channel, MacAddr, PhyRate, SeqNum};
    use jigsaw_trace::stream::MemoryStream;
    use jigsaw_trace::{MonitorId, PhyStatus, RadioId, RadioMeta};

    fn meta(radio: u16, anchor_local: u64) -> RadioMeta {
        RadioMeta {
            radio: RadioId(radio),
            monitor: MonitorId(radio),
            channel: Channel::of(1),
            anchor_wall_us: 0,
            anchor_local_us: anchor_local,
        }
    }

    fn frame_bytes(seq: u16) -> Vec<u8> {
        serialize_frame(&Frame::Data(DataFrame {
            duration: 44,
            addr1: MacAddr::local(1, 1),
            addr2: MacAddr::local(2, 2),
            addr3: MacAddr::local(3, 3),
            seq: SeqNum::new(seq),
            frag: 0,
            flags: FcFlags {
                to_ds: true,
                ..Default::default()
            },
            null: false,
            body: vec![seq as u8; 40],
        }))
    }

    fn ev(radio: u16, ts: u64, bytes: Vec<u8>) -> PhyEvent {
        let wire_len = bytes.len() as u32;
        PhyEvent {
            radio: RadioId(radio),
            ts_local: ts,
            channel: Channel::of(1),
            rate: PhyRate::R11,
            rssi_dbm: -50,
            status: PhyStatus::Ok,
            wire_len,
            bytes: bytes.into(),
        }
    }

    #[test]
    fn naive_merge_unifies_only_aligned_clocks() {
        let f = frame_bytes(1);
        // Aligned clocks: naive merge works.
        let s0 = MemoryStream::new(meta(0, 0), vec![ev(0, 1000, f.clone())]);
        let s1 = MemoryStream::new(meta(1, 0), vec![ev(1, 1004, f.clone())]);
        let mut n = 0;
        let stats = naive_merge(vec![s0, s1], 10_000, |_| n += 1).unwrap();
        assert_eq!(stats.jframes_out, 1);
        assert_eq!(stats.instances_unified, 2);

        // Offset clocks (the real world): duplicates never meet.
        let s0 = MemoryStream::new(meta(0, 0), vec![ev(0, 1000, f.clone())]);
        let s1 = MemoryStream::new(meta(1, 0), vec![ev(1, 3_601_004, f)]);
        let stats = naive_merge(vec![s0, s1], 10_000, |_| {}).unwrap();
        assert_eq!(stats.jframes_out, 2, "naive merge must fail to unify");
        assert_eq!(stats.instances_unified, 0);
    }

    #[test]
    fn yeo_merge_syncs_but_never_resyncs() {
        // Both radios share a reference frame in the first second, then
        // radio 1 drifts.
        let fa = frame_bytes(1);
        let mut ev0 = vec![ev(0, 100, fa.clone())];
        let mut ev1 = vec![ev(1, 700_100, fa)];
        for k in 1..100u64 {
            let f = frame_bytes((k % 4000) as u16);
            let t = 100 + k * 50_000;
            ev0.push(ev(0, t, f.clone()));
            // +100 ppm drift on radio 1.
            ev1.push(ev(1, t + 700_000 + k * 5, f));
        }
        let s0 = MemoryStream::new(meta(0, 0), ev0);
        let s1 = MemoryStream::new(meta(1, 700_000), ev1);
        let (stats, boot) = yeo_merge(
            vec![s0, s1],
            &BootstrapConfig::default(),
            &MergeConfig::default(),
            |_| {},
        )
        .unwrap();
        assert_eq!(boot.components, 1);
        assert_eq!(stats.resyncs, 0);
        // Everything still unifies (drift < merge gap over this short run),
        // but dispersion grows unboundedly — measured by the bench harness.
        assert!(stats.jframes_out <= 100 + 1);
    }
}
