//! End-to-end simulator smoke tests: does a small world actually produce
//! associations, TCP traffic, monitor captures, a wired trace and coherent
//! ground truth?

use jigsaw_ieee80211::Subtype;
use jigsaw_sim::scenario::ScenarioConfig;
use jigsaw_trace::PhyStatus;

#[test]
fn tiny_world_produces_traffic_and_captures() {
    let out = ScenarioConfig::tiny(11).run();

    // Monitors captured a meaningful number of events.
    let total = out.total_events();
    assert!(total > 300, "too few capture events: {total}");
    // Each radio trace is time-sorted.
    for t in &out.traces {
        for w in t.windows(2) {
            assert!(w[0].ts_local <= w[1].ts_local);
        }
    }

    // Ground truth saw beacons, data, and ACKs.
    let truth = &out.truth;
    assert!(!truth.transmissions.is_empty());
    let beacons = truth
        .transmissions
        .iter()
        .filter(|t| t.subtype == Some(Subtype::Beacon))
        .count();
    let data = truth
        .transmissions
        .iter()
        .filter(|t| t.subtype == Some(Subtype::Data))
        .count();
    let acks = truth
        .transmissions
        .iter()
        .filter(|t| t.subtype == Some(Subtype::Ack))
        .count();
    assert!(beacons > 50, "beacons: {beacons}");
    assert!(data > 50, "data frames: {data}");
    assert!(acks > 20, "acks: {acks}");

    // TCP flows opened and mostly completed.
    assert!(out.stats.flows_opened > 0, "no flows opened");
    assert!(
        out.stats.flows_completed * 2 >= out.stats.flows_opened,
        "most flows should complete: {}/{}",
        out.stats.flows_completed,
        out.stats.flows_opened
    );

    // The wired trace saw traffic in both directions.
    use jigsaw_sim::wired::WiredDirection;
    let to_wireless = out
        .wired
        .iter()
        .filter(|r| r.direction == WiredDirection::ToWireless)
        .count();
    let from_wireless = out
        .wired
        .iter()
        .filter(|r| r.direction == WiredDirection::FromWireless)
        .count();
    assert!(to_wireless > 10, "to_wireless: {to_wireless}");
    assert!(from_wireless > 10, "from_wireless: {from_wireless}");
}

#[test]
fn captures_include_errors_and_corruption() {
    let out = ScenarioConfig::small(5).run();
    let mut ok = 0u64;
    let mut fcs = 0u64;
    let mut phy = 0u64;
    for t in &out.traces {
        for e in t {
            match e.status {
                PhyStatus::Ok => ok += 1,
                PhyStatus::FcsError => fcs += 1,
                PhyStatus::PhyError => phy += 1,
            }
        }
    }
    assert!(ok > 0 && fcs > 0, "ok {ok} fcs {fcs} phy {phy}");
    // Corrupted or weak receptions exist but don't dominate valid ones
    // beyond reason (the paper sees ~47% error events).
    let total = ok + fcs + phy;
    assert!(
        (fcs + phy) * 10 > total,
        "unrealistically clean capture: {ok}/{fcs}/{phy}"
    );
}

#[test]
fn exchanges_mostly_delivered_and_acked() {
    let out = ScenarioConfig::tiny(3).run();
    let x = &out.truth.exchanges;
    assert!(!x.is_empty());
    let attempted: Vec<_> = x.iter().filter(|e| e.attempts > 0).collect();
    assert!(!attempted.is_empty());
    let delivered = attempted.iter().filter(|e| e.delivered).count();
    let acked = attempted.iter().filter(|e| e.acked).count();
    // In a quiet tiny world, most exchanges succeed (multipath fading
    // keeps a marginal tail even here).
    assert!(
        delivered * 10 >= attempted.len() * 7,
        "delivered {delivered}/{}",
        attempted.len()
    );
    // ACKed implies delivered for every exchange.
    for e in x.iter() {
        if e.acked {
            assert!(e.delivered, "acked but not delivered: {e:?}");
        }
    }
    assert!(acked > 0);
}

#[test]
fn same_seed_same_world() {
    let a = ScenarioConfig::tiny(99).run();
    let b = ScenarioConfig::tiny(99).run();
    assert_eq!(a.total_events(), b.total_events());
    assert_eq!(a.truth.transmissions.len(), b.truth.transmissions.len());
    assert_eq!(a.wired.len(), b.wired.len());
    // Event-level determinism on one radio.
    assert_eq!(a.traces[0].len(), b.traces[0].len());
    for (x, y) in a.traces[0].iter().zip(b.traces[0].iter()) {
        assert_eq!(x, y);
    }
}

#[test]
fn clients_associate_in_truth() {
    let out = ScenarioConfig::tiny(21).run();
    let assoc_resp = out
        .truth
        .transmissions
        .iter()
        .filter(|t| t.subtype == Some(Subtype::AssocResp))
        .count();
    assert!(assoc_resp >= 1, "no association seen");
}
