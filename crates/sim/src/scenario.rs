//! Scenario configuration and world construction: the UCSD-CSE-building
//! deployment (paper §3) and scaled-down variants for tests.
//!
//! ## Time compression
//!
//! A real 24-hour trace is not tractable in a unit-test budget, so scenarios
//! compress the *diurnal* timeline (session arrival/departure, think times)
//! while keeping *MAC-timescale* behaviour real (beacon intervals, SIFS/DIFS,
//! airtime, RTTs, ARP rates). Airtime fractions — what the paper's Figure 8
//! and the interference analysis measure — are therefore preserved, while a
//! "day" passes in minutes. `day_us` is the simulated duration standing in
//! for 24 hours; per-minute bins in the analyses map to per-day-1440th bins.

use crate::clock::{ClockCursor, ClockModel};
use crate::event::EventKind;
use crate::geom::Building;
use crate::mac::Mac;
use crate::medium::{Entity, EntityKind, Medium};
use crate::monitor::{Monitor, MonitorRadio, TraceCollector};
use crate::output::{GroundTruth, SimStats};
use crate::prop::{PropModel, MONITOR_ANT_GAIN_DDB, TX_POWER_DDBM};
use crate::rng::{normal, stream};
use crate::station::{ApState, ClientState, Role, Station, WiredHost};
use crate::traffic::{sample_session, WorkloadParams};
use crate::wired::Wired;
use crate::world::{InterfererState, TruthMode, World};
use crate::{HostId, StationId};
use jigsaw_ieee80211::{Channel, MacAddr, Micros};
use jigsaw_trace::{MonitorId, RadioId};
use rand::Rng;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Ground-truth recording level requested by a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruthConfig {
    /// Record nothing.
    Off,
    /// Record only the traffic of client `n` (the §6 oracle laptop).
    OracleClient(usize),
    /// Record everything (small validation runs only).
    Full,
}

/// All scenario parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Master seed — everything is deterministic in it.
    pub seed: u64,
    /// Simulated duration representing one day, µs.
    pub day_us: Micros,
    /// Diurnal compression factor (real seconds per simulated second) —
    /// scales session placement and the protection timeout.
    pub day_compression: f64,
    /// Workload compression (think times, ssh gaps).
    pub workload_compression: f64,
    /// Number of sensor pods (×2 monitors ×2 radios each).
    pub n_pods: usize,
    /// Internal production APs.
    pub n_aps: usize,
    /// Neighbor-building / rogue APs (beacon-only, weak).
    pub n_external_aps: usize,
    /// Wireless clients.
    pub n_clients: usize,
    /// Fraction of clients with 802.11b-only hardware.
    pub b_only_fraction: f64,
    /// How many clients run the MS-Office-style broadcaster.
    pub office_broadcasters: usize,
    /// LAN hosts (low latency, lossless).
    pub lan_hosts: usize,
    /// Internet hosts (higher latency, lossy).
    pub internet_hosts: usize,
    /// Loss probability on Internet paths.
    pub internet_loss: f64,
    /// Beacon interval (real MAC timescale).
    pub beacon_interval_us: Micros,
    /// AP protection-mode switch-off timeout (paper: one hour, scaled by
    /// day compression).
    pub protection_timeout_us: Micros,
    /// How often APs re-evaluate the protection timeout.
    pub protection_check_us: Micros,
    /// Vernier-style ARP scan period.
    pub vernier_interval_us: Micros,
    /// Office UDP broadcast period.
    pub office_broadcast_us: Micros,
    /// Capture snap length (jigdump: ~200 bytes + headers).
    pub snaplen: u32,
    /// Monitor clock initial offsets drawn uniformly from [0, this].
    pub clock_offset_max_us: u64,
    /// σ of the per-monitor constant skew, ppm.
    pub clock_skew_ppm_sigma: f64,
    /// σ of the per-second skew random walk, ppm.
    pub clock_drift_ppm_sigma: f64,
    /// NTP error drawn uniformly from ±this.
    pub ntp_error_max_us: i64,
    /// Number of microwave-oven interferers.
    pub microwaves: usize,
    /// Mean gap between cooking sessions.
    pub microwave_gap_us: Micros,
    /// Cooking session duration (upper bound; lower = half).
    pub microwave_cook_us: Micros,
    /// Ground-truth recording.
    pub truth: TruthConfig,
    /// When false, clients are active for the whole run (tests) instead of
    /// sampling diurnal sessions.
    pub diurnal: bool,
}

impl ScenarioConfig {
    /// The paper-scale building day, diurnally compressed: 39 pods
    /// (156 radios), 39+5 APs, external APs, 60 diurnal clients, a full
    /// traffic mix — a "24-hour" trace in 12 simulated minutes.
    pub fn paper_day(seed: u64) -> Self {
        let day_compression = 120.0;
        ScenarioConfig {
            seed,
            day_us: 720_000_000, // 720 s ≙ 24 h
            day_compression,
            workload_compression: 10.0,
            n_pods: 39,
            n_aps: 44, // 39 + 5 basement
            n_external_aps: 12,
            n_clients: 60,
            b_only_fraction: 0.3,
            office_broadcasters: 3,
            lan_hosts: 4,
            internet_hosts: 12,
            internet_loss: 0.004,
            beacon_interval_us: 102_400,
            protection_timeout_us: (3_600_000_000f64 / day_compression) as Micros,
            protection_check_us: 1_000_000,
            vernier_interval_us: 1_000_000,
            office_broadcast_us: 10_000_000,
            snaplen: 260,
            clock_offset_max_us: 100_000_000_000, // up to ~28 h of TSF offset
            clock_skew_ppm_sigma: 15.0,
            clock_drift_ppm_sigma: 0.02,
            ntp_error_max_us: 800,
            microwaves: 2,
            microwave_gap_us: 60_000_000,
            microwave_cook_us: 4_000_000,
            truth: TruthConfig::Off,
            diurnal: true,
        }
    }

    /// A small multi-AP scenario for integration tests (~tens of seconds).
    pub fn small(seed: u64) -> Self {
        ScenarioConfig {
            day_us: 30_000_000,
            day_compression: 2880.0,
            n_pods: 6,
            n_aps: 4,
            n_external_aps: 1,
            n_clients: 8,
            office_broadcasters: 1,
            lan_hosts: 2,
            internet_hosts: 3,
            microwaves: 1,
            microwave_gap_us: 8_000_000,
            microwave_cook_us: 2_000_000,
            clock_offset_max_us: 10_000_000_000,
            truth: TruthConfig::Full,
            diurnal: false,
            ..Self::paper_day(seed)
        }
    }

    /// A minimal one-AP lab for unit tests (seconds).
    pub fn tiny(seed: u64) -> Self {
        ScenarioConfig {
            day_us: 8_000_000,
            day_compression: 10_000.0,
            n_pods: 2,
            n_aps: 1,
            n_external_aps: 0,
            n_clients: 2,
            b_only_fraction: 0.0,
            office_broadcasters: 0,
            lan_hosts: 1,
            internet_hosts: 1,
            internet_loss: 0.0,
            microwaves: 0,
            clock_offset_max_us: 1_000_000_000,
            truth: TruthConfig::Full,
            diurnal: false,
            workload_compression: 30.0,
            ..Self::paper_day(seed)
        }
    }

    /// Builds the world and schedules the initial events.
    pub fn build(self) -> World {
        build_world(self)
    }

    /// Convenience: build and run for the configured day.
    pub fn run(self) -> crate::output::SimOutput {
        let day = self.day_us;
        self.build().run(day)
    }
}

fn client_session_bounds(rng: &mut impl Rng, day_us: Micros) -> (Micros, Micros, bool) {
    let (s, e, overnight) = sample_session(rng, day_us);
    // Ensure a non-degenerate session.
    let s = s.min(day_us.saturating_sub(1_000_000));
    let e = e.max(s + 1_000_000).min(day_us);
    (s, e, overnight)
}

fn build_world(cfg: ScenarioConfig) -> World {
    let building = Building::ucsd_cse();
    let prop = PropModel::default();
    let mut rng = stream(cfg.seed, "scenario");

    let mut entities: Vec<Entity> = Vec::new();
    let mut stations: Vec<Station> = Vec::new();
    let mut addr_to_station = HashMap::new();
    let mut ip_to_station = HashMap::new();

    // ---- internal APs --------------------------------------------------
    let ap_positions = building.corridor_grid(cfg.n_aps);
    let mut ap_channel: Vec<Channel> = Vec::with_capacity(cfg.n_aps);
    for (i, pos) in ap_positions.iter().enumerate() {
        let channel = Channel::ORTHOGONAL[i % 3];
        ap_channel.push(channel);
        let entity = entities.len() as u32;
        entities.push(Entity {
            pos: *pos,
            channel,
            kind: EntityKind::Station { b_only: false },
            ant_gain_ddb: 20,
            tx_power_ddbm: TX_POWER_DDBM + 10, // APs run a bit hotter
        });
        let sid = StationId(stations.len() as u16);
        let addr = MacAddr::local(0, i as u32);
        let ip = Ipv4Addr::new(10, 1, (i / 200) as u8, (i % 200 + 1) as u8);
        let mac = Mac::new(addr, false);
        stations.push(Station::new(
            sid,
            entity,
            Role::Ap(ApState::new(
                format!("cse-{}", i % 4).into_bytes(),
                cfg.protection_timeout_us,
                false,
            )),
            mac,
            ip,
        ));
        addr_to_station.insert(addr, sid);
    }

    // ---- external / rogue APs ------------------------------------------
    for i in 0..cfg.n_external_aps {
        let side = i % 4;
        let (x, y) = match side {
            0 => (-30.0 - (i as f64) * 5.0, 15.0),
            1 => (building.width_m + 30.0 + (i as f64) * 5.0, 20.0),
            2 => (20.0 + (i as f64) * 4.0, -35.0),
            _ => (30.0 + (i as f64) * 4.0, building.depth_m + 35.0),
        };
        let mut pos = building.at((i % 4) as u8, 0.0, 0.0);
        pos.x = x;
        pos.y = y;
        let channel = Channel::ORTHOGONAL[(i + 1) % 3];
        let entity = entities.len() as u32;
        entities.push(Entity {
            pos,
            channel,
            kind: EntityKind::Station { b_only: false },
            ant_gain_ddb: 20,
            tx_power_ddbm: TX_POWER_DDBM + 30,
        });
        let sid = StationId(stations.len() as u16);
        let addr = MacAddr::local(4, i as u32);
        let mac = Mac::new(addr, false);
        stations.push(Station::new(
            sid,
            entity,
            Role::Ap(ApState::new(
                format!("ext-{i}").into_bytes(),
                cfg.protection_timeout_us,
                true,
            )),
            mac,
            Ipv4Addr::new(192, 168, 77, (i + 1) as u8),
        ));
        addr_to_station.insert(addr, sid);
    }

    // ---- clients --------------------------------------------------------
    let client_positions = building.office_positions(cfg.n_clients);
    let mut client_sessions = Vec::with_capacity(cfg.n_clients);
    for (i, pos) in client_positions.iter().enumerate() {
        // Tune the client to the channel of its nearest internal AP.
        let nearest = ap_positions
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                pos.distance(a)
                    .partial_cmp(&pos.distance(b))
                    .expect("finite")
            })
            .map(|(idx, _)| idx)
            .unwrap_or(0);
        let channel = ap_channel[nearest];
        let b_only = rng.gen_bool(cfg.b_only_fraction.clamp(0.0, 1.0));
        let entity = entities.len() as u32;
        entities.push(Entity {
            pos: *pos,
            channel,
            kind: EntityKind::Station { b_only },
            ant_gain_ddb: 0,
            tx_power_ddbm: TX_POWER_DDBM,
        });
        let sid = StationId(stations.len() as u16);
        let addr = MacAddr::local(3, i as u32);
        let ip = Ipv4Addr::new(10, 2, (i / 200) as u8, (i % 200 + 1) as u8);
        let (start, end, overnight) = if cfg.diurnal {
            client_session_bounds(&mut rng, cfg.day_us)
        } else {
            (200_000 * (i as u64 + 1), cfg.day_us, true)
        };
        client_sessions.push((sid, start, end));
        let mac = Mac::new(addr, b_only);
        stations.push(Station::new(
            sid,
            entity,
            Role::Client(ClientState::new(b_only, start, end, overnight)),
            mac,
            ip,
        ));
        addr_to_station.insert(addr, sid);
        ip_to_station.insert(ip, sid);
    }

    // ---- monitors / pods -------------------------------------------------
    // Pods sit in corridors too, offset from the AP grid.
    let mut pod_positions = building.corridor_grid(cfg.n_pods);
    for p in pod_positions.iter_mut() {
        p.x = (p.x + 2.5).min(building.width_m);
        p.y = (p.y + 1.0).min(building.depth_m);
    }
    let mut monitors: Vec<Monitor> = Vec::new();
    let mut collectors: Vec<TraceCollector> = Vec::new();
    let mut entity_monitor_radio: Vec<Option<(u16, u8)>> = vec![None; entities.len()];
    let mut clock_rng = stream(cfg.seed, "clocks");
    let mut next_radio = 0u16;
    for (p, pos) in pod_positions.iter().enumerate() {
        // Per pod: monitor A radios on ch 1 & 6, monitor B on ch 11 and a
        // rotating fourth channel.
        let fourth = Channel::ORTHOGONAL[p % 3];
        let chans = [[Channel::of(1), Channel::of(6)], [Channel::of(11), fourth]];
        for (half, chan_pair) in chans.iter().enumerate() {
            let mon_id = MonitorId(monitors.len() as u16);
            let offset = clock_rng.gen_range(0..=cfg.clock_offset_max_us);
            let skew = normal(&mut clock_rng, 0.0, cfg.clock_skew_ppm_sigma).clamp(-80.0, 80.0);
            let steps_n = (cfg.day_us / ClockModel::DRIFT_STEP_US + 2) as usize;
            let drift: Vec<f64> = (0..steps_n)
                .map(|_| normal(&mut clock_rng, 0.0, cfg.clock_drift_ppm_sigma))
                .collect();
            let ntp_err = clock_rng.gen_range(-cfg.ntp_error_max_us..=cfg.ntp_error_max_us);
            let model = ClockModel::new(offset, skew, drift, ntp_err);
            let mut radios = Vec::with_capacity(2);
            for (slot, &ch) in chan_pair.iter().enumerate() {
                let entity = entities.len() as u32;
                // The two monitors of a pod sit a meter apart.
                let mut mp = *pos;
                mp.x = (mp.x + half as f64).min(building.width_m);
                entities.push(Entity {
                    pos: mp,
                    channel: ch,
                    kind: EntityKind::MonitorRadio,
                    ant_gain_ddb: MONITOR_ANT_GAIN_DDB,
                    tx_power_ddbm: 0,
                });
                entity_monitor_radio.push(Some((mon_id.0, slot as u8)));
                radios.push(MonitorRadio {
                    radio: RadioId(next_radio),
                    entity,
                    channel: ch,
                });
                next_radio += 1;
                collectors.push(TraceCollector::default());
            }
            monitors.push(Monitor {
                id: mon_id,
                clock: ClockCursor::new(model),
                radios: [radios[0], radios[1]],
            });
        }
    }
    // entity_monitor_radio was extended while pushing entities; make sure the
    // station prefix is padded correctly.
    debug_assert_eq!(entity_monitor_radio.len(), entities.len());

    // ---- interferers -----------------------------------------------------
    let mut interferers = Vec::new();
    for m in 0..cfg.microwaves {
        let entity = entities.len() as u32;
        let pos = building.at((m % 4) as u8, 10.0 + 20.0 * m as f64, 5.0);
        entities.push(Entity {
            pos,
            channel: Channel::of(8), // microwaves sit mid-band
            kind: EntityKind::Interferer,
            ant_gain_ddb: 0,
            tx_power_ddbm: 260, // strong leakage
        });
        entity_monitor_radio.push(None);
        interferers.push(InterfererState {
            entity,
            session_until: 0,
            burst_active: false,
        });
    }

    // ---- wired hosts -----------------------------------------------------
    let mut hosts = Vec::new();
    for h in 0..cfg.lan_hosts {
        hosts.push(WiredHost {
            id: HostId(hosts.len() as u16),
            mac: MacAddr::local(9, h as u32),
            ip: Ipv4Addr::new(172, 16, 0, (h + 1) as u8),
            latency_us: 300,
            loss_prob: 0.0,
        });
    }
    for h in 0..cfg.internet_hosts {
        hosts.push(WiredHost {
            id: HostId(hosts.len() as u16),
            mac: MacAddr::local(9, 1000 + h as u32),
            ip: Ipv4Addr::new(198, 18, (h / 200) as u8, (h % 200 + 1) as u8),
            latency_us: 5_000 + 3_000 * h as u64,
            loss_prob: cfg.internet_loss,
        });
    }
    let vernier_host = if cfg.lan_hosts > 0 {
        Some(HostId(0))
    } else {
        None
    };

    // ---- medium + audibility --------------------------------------------
    let medium = Medium::new(&building, &prop, entities, cfg.seed);
    let n_entities = medium.entity_count();
    let mut entity_station: Vec<Option<StationId>> = vec![None; n_entities];
    for s in &stations {
        entity_station[s.entity as usize] = Some(s.id);
    }

    let mut audible_stations: Vec<Vec<(StationId, i32)>> = vec![Vec::new(); n_entities];
    let mut audible_radios: Vec<Vec<(u32, i32)>> = vec![Vec::new(); n_entities];
    use crate::prop::AUDIBLE_CUTOFF_DDBM as AUDIBLE_CUTOFF;
    for tx in 0..n_entities as u32 {
        let can_tx = !matches!(medium.entity(tx).kind, EntityKind::MonitorRadio);
        if !can_tx {
            continue;
        }
        let tx_chan = medium.entity(tx).channel;
        for rx in 0..n_entities as u32 {
            if rx == tx {
                continue;
            }
            let p = medium.rx_power_ddbm(tx, rx, tx_chan);
            if p < AUDIBLE_CUTOFF {
                continue;
            }
            match medium.entity(rx).kind {
                EntityKind::Station { .. } => {
                    if let Some(sid) = entity_station[rx as usize] {
                        audible_stations[tx as usize].push((sid, p));
                    }
                }
                EntityKind::MonitorRadio => {
                    audible_radios[tx as usize].push((rx, p));
                }
                EntityKind::Interferer => {}
            }
        }
    }

    // ---- truth mode -------------------------------------------------------
    let truth_mode = match cfg.truth {
        TruthConfig::Off => TruthMode::Off,
        TruthConfig::Full => TruthMode::Full,
        TruthConfig::OracleClient(n) => {
            let idx = cfg.n_aps + cfg.n_external_aps + n.min(cfg.n_clients.saturating_sub(1));
            TruthMode::Sample(stations[idx].mac.addr)
        }
    };

    let params = WorkloadParams::compressed(cfg.workload_compression);
    let world_rng = stream(cfg.seed, "world");

    let mut world = World {
        params,
        now: 0,
        queue: crate::event::EventQueue::new(),
        medium,
        stations,
        monitors,
        collectors,
        wired: Wired::new(hosts),
        wired_trace: Vec::new(),
        flows: Vec::new(),
        truth: GroundTruth::default(),
        truth_mode,
        stats: SimStats::default(),
        rng: world_rng,
        addr_to_station,
        ip_to_station,
        entity_station,
        entity_monitor_radio,
        flow_by_client_port: HashMap::new(),
        audible_stations,
        audible_radios,
        tx_tags: HashMap::new(),
        sensing_holds: HashMap::new(),
        next_xid: 0,
        next_port: 10_000,
        interferers,
        vernier_registry: Vec::new(),
        vernier_next: 0,
        vernier_host,
        cfg,
    };

    // ---- initial events ----------------------------------------------------
    let n_aps_total = world.cfg.n_aps + world.cfg.n_external_aps;
    for i in 0..n_aps_total {
        let sid = StationId(i as u16);
        let stagger = (i as u64 * 2_341) % world.cfg.beacon_interval_us;
        world
            .queue
            .schedule(stagger, EventKind::Beacon { station: sid });
        if i < world.cfg.n_aps {
            world.queue.schedule(
                world.cfg.protection_check_us,
                EventKind::ProtectionCheck { station: sid },
            );
        }
    }
    for (sid, start, end) in client_sessions {
        world.queue.schedule(
            start,
            EventKind::ClientLifecycle {
                station: sid,
                activate: true,
            },
        );
        world.queue.schedule(
            end,
            EventKind::ClientLifecycle {
                station: sid,
                activate: false,
            },
        );
    }
    // Office broadcasters: the first K clients.
    for k in 0..world.cfg.office_broadcasters.min(world.cfg.n_clients) {
        let sid = StationId((n_aps_total + k) as u16);
        let stagger = world.cfg.office_broadcast_us / (k as u64 + 1);
        world
            .queue
            .schedule(stagger, EventKind::OfficeBroadcast { station: sid });
    }
    world.queue.schedule(1_000_000, EventKind::VernierArp);
    for (i, _) in world.interferers.iter().enumerate() {
        world
            .queue
            .schedule(500_000, EventKind::NoiseBurst { entity: i as u32 });
    }

    world
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_world_builds() {
        let w = ScenarioConfig::tiny(1).build();
        assert_eq!(w.stations.len(), 3); // 1 AP + 0 external + 2 clients
        assert_eq!(w.monitors.len(), 4); // 2 pods × 2 monitors
        assert_eq!(w.collectors.len(), 8); // × 2 radios
        assert!(!w.queue.is_empty());
    }

    #[test]
    fn paper_day_inventory() {
        let w = ScenarioConfig::paper_day(7).build();
        // 156 radios: 39 pods × 2 monitors × 2 radios.
        assert_eq!(w.collectors.len(), 156);
        assert_eq!(w.monitors.len(), 78);
        assert_eq!(
            w.stations.len(),
            w.cfg.n_aps + w.cfg.n_external_aps + w.cfg.n_clients
        );
        // Pods cover all three orthogonal channels.
        let chans: std::collections::HashSet<u8> = w
            .monitors
            .iter()
            .flat_map(|m| m.radios.iter().map(|r| r.channel.number()))
            .collect();
        assert!(chans.contains(&1) && chans.contains(&6) && chans.contains(&11));
    }

    #[test]
    fn determinism() {
        let w1 = ScenarioConfig::tiny(42).build();
        let w2 = ScenarioConfig::tiny(42).build();
        assert_eq!(w1.stations.len(), w2.stations.len());
        for (a, b) in w1.stations.iter().zip(w2.stations.iter()) {
            assert_eq!(a.mac.addr, b.mac.addr);
            assert_eq!(a.mac.b_only, b.mac.b_only);
        }
        for (a, b) in w1.monitors.iter().zip(w2.monitors.iter()) {
            assert_eq!(a.clock.model().offset_us, b.clock.model().offset_us);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let w1 = ScenarioConfig::tiny(1).build();
        let w2 = ScenarioConfig::tiny(2).build();
        let o1: Vec<u64> = w1
            .monitors
            .iter()
            .map(|m| m.clock.model().offset_us)
            .collect();
        let o2: Vec<u64> = w2
            .monitors
            .iter()
            .map(|m| m.clock.model().offset_us)
            .collect();
        assert_ne!(o1, o2);
    }

    #[test]
    fn clients_tuned_to_nearest_ap_channel() {
        let w = ScenarioConfig::small(3).build();
        let ap_chans: Vec<u8> = (0..w.cfg.n_aps)
            .map(|i| w.medium.entity(w.stations[i].entity).channel.number())
            .collect();
        for s in &w.stations {
            if s.role.as_client().is_some() {
                let ch = w.medium.entity(s.entity).channel.number();
                assert!(ap_chans.contains(&ch));
            }
        }
    }
}
