//! The wired distribution network: the switch fabric connecting APs to
//! campus/Internet hosts, the wired-side packet trace (the paper's §6
//! coverage ground truth), and wired-path impairments (latency, loss).

use crate::station::WiredHost;
use crate::{HostId, StationId};
use jigsaw_ieee80211::{MacAddr, Micros};
use jigsaw_packet::Msdu;
// tidy:allow-file(hash-order): host maps are lookup-only; AP/record lists are collected into Vecs and sorted before use
use std::collections::HashMap;

/// Destination of a packet in flight on the wired side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WiredDst {
    /// To a wired host (server / router).
    Host(HostId),
    /// To one AP, for wireless transmission.
    Ap(StationId),
}

/// A packet crossing the wired network.
#[derive(Debug, Clone)]
pub struct WiredPacket {
    /// L2 source.
    pub src_mac: MacAddr,
    /// L2 destination (a client MAC, host MAC, or broadcast).
    pub dst_mac: MacAddr,
    /// Payload.
    pub msdu: Msdu,
    /// Where it is headed.
    pub dst: WiredDst,
}

/// Direction of a wired-trace record relative to the wireless network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WiredDirection {
    /// Left the wireless network through an AP.
    FromWireless,
    /// Entered the wireless network through an AP (or will, if bridged).
    ToWireless,
}

impl WiredDirection {
    /// Compact code for serialization.
    pub fn code(self) -> u8 {
        match self {
            WiredDirection::FromWireless => 0,
            WiredDirection::ToWireless => 1,
        }
    }

    /// Decodes [`WiredDirection::code`].
    pub fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(WiredDirection::FromWireless),
            1 => Some(WiredDirection::ToWireless),
            _ => None,
        }
    }
}

/// The wired side of the world: hosts, switch learning table, in-flight
/// packet storage.
#[derive(Debug, Default)]
pub struct Wired {
    /// All wired hosts.
    pub hosts: Vec<WiredHost>,
    /// Switch bridge table: which AP serves a given client MAC.
    pub client_ap: HashMap<MacAddr, StationId>,
    /// Host lookup by MAC.
    pub host_by_mac: HashMap<MacAddr, HostId>,
    /// Host lookup by IP.
    pub host_by_ip: HashMap<std::net::Ipv4Addr, HostId>,
    /// In-flight packets keyed by delivery handle.
    in_flight: HashMap<u64, WiredPacket>,
    next_handle: u64,
}

impl Wired {
    /// Builds the wired network from a host table.
    pub fn new(hosts: Vec<WiredHost>) -> Self {
        let host_by_mac = hosts.iter().map(|h| (h.mac, h.id)).collect();
        let host_by_ip = hosts.iter().map(|h| (h.ip, h.id)).collect();
        Wired {
            hosts,
            client_ap: HashMap::new(),
            host_by_mac,
            host_by_ip,
            in_flight: HashMap::new(),
            next_handle: 0,
        }
    }

    /// Host accessor.
    pub fn host(&self, id: HostId) -> &WiredHost {
        &self.hosts[id.index()]
    }

    /// Registers an in-flight packet; returns the handle to schedule with.
    pub fn launch(&mut self, pkt: WiredPacket) -> u64 {
        let h = self.next_handle;
        self.next_handle += 1;
        self.in_flight.insert(h, pkt);
        h
    }

    /// Claims an arrived packet.
    ///
    /// # Panics
    /// Panics on an unknown handle (scheduling bug).
    pub fn arrive(&mut self, handle: u64) -> WiredPacket {
        self.in_flight
            .remove(&handle)
            .expect("unknown wired handle")
    }

    /// Learns / refreshes a client's serving AP (bridge learning).
    pub fn learn_client(&mut self, client: MacAddr, ap: StationId) {
        self.client_ap.insert(client, ap);
    }

    /// Forgets a client (disassociation).
    pub fn forget_client(&mut self, client: MacAddr) {
        self.client_ap.remove(&client);
    }
}

/// One record of the wired distribution-network trace. This is the exact
/// analogue of the "second trace of the same traffic captured on the wired
/// distribution network" the paper compares coverage against (§6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WiredTraceRecord {
    /// True time the packet crossed the building switch, µs.
    pub ts: Micros,
    /// L2 source address.
    pub src_mac: MacAddr,
    /// L2 destination address.
    pub dst_mac: MacAddr,
    /// The AP it entered/left through (None for host↔host chatter).
    pub ap: Option<StationId>,
    /// Direction relative to the wireless side.
    pub direction: WiredDirection,
    /// Decoded payload (headers only are meaningful).
    pub msdu: Msdu,
}

/// Magic prefixing an encoded wired trace ([`encode_wired_trace`]).
pub const WIRED_TRACE_MAGIC: [u8; 4] = *b"JIGW";
/// Format version of the wired-trace encoding.
pub const WIRED_TRACE_VERSION: u8 = 1;

/// Encodes a wired trace (plus the AP id → MAC table the coverage analysis
/// needs to attribute `ToWireless` packets) into the corpus's `wired.jigw`
/// member. Records are delta/varint packed; MSDUs serialize through their
/// LLC/SNAP wire form ([`Msdu::to_bytes`]), so the exact header fields the
/// Figure 6 comparison keys on survive the roundtrip. `ap_addr_of` maps a
/// station id to its MAC (only ids appearing in the records are consulted).
pub fn encode_wired_trace(
    records: &[WiredTraceRecord],
    ap_addr_of: &dyn Fn(u16) -> MacAddr,
) -> Vec<u8> {
    use jigsaw_trace::varint::put_uvarint;
    let mut out = Vec::with_capacity(32 + records.len() * 48);
    out.extend_from_slice(&WIRED_TRACE_MAGIC);
    out.push(WIRED_TRACE_VERSION);
    // AP table: every station id referenced by a record, in id order.
    let mut ap_ids: Vec<u16> = records.iter().filter_map(|r| r.ap.map(|s| s.0)).collect();
    ap_ids.sort_unstable();
    ap_ids.dedup();
    put_uvarint(&mut out, ap_ids.len() as u64);
    for id in ap_ids {
        put_uvarint(&mut out, u64::from(id));
        out.extend_from_slice(ap_addr_of(id).bytes());
    }
    put_uvarint(&mut out, records.len() as u64);
    let mut prev_ts = 0u64;
    for r in records {
        put_uvarint(&mut out, r.ts.saturating_sub(prev_ts));
        prev_ts = r.ts;
        out.extend_from_slice(r.src_mac.bytes());
        out.extend_from_slice(r.dst_mac.bytes());
        put_uvarint(&mut out, r.ap.map(|s| u64::from(s.0) + 1).unwrap_or(0));
        out.push(r.direction.code());
        let msdu = r.msdu.to_bytes();
        put_uvarint(&mut out, msdu.len() as u64);
        out.extend_from_slice(&msdu);
    }
    out
}

/// Decodes [`encode_wired_trace`]'s output back into records plus the AP
/// id → MAC table.
pub fn decode_wired_trace(
    bytes: &[u8],
) -> Result<(Vec<WiredTraceRecord>, HashMap<u16, MacAddr>), String> {
    use jigsaw_trace::varint::get_uvarint;
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
        let s = bytes
            .get(*pos..*pos + n)
            .ok_or_else(|| format!("wired trace truncated at byte {pos}", pos = *pos))?;
        *pos += n;
        Ok(s)
    };
    let varint = |pos: &mut usize| -> Result<u64, String> {
        let (v, n) = get_uvarint(&bytes[*pos..])
            .ok_or_else(|| format!("bad varint at byte {pos}", pos = *pos))?;
        *pos += n;
        Ok(v)
    };
    if take(&mut pos, 4)? != WIRED_TRACE_MAGIC {
        return Err("bad wired-trace magic".into());
    }
    if take(&mut pos, 1)? != [WIRED_TRACE_VERSION] {
        return Err("unsupported wired-trace version".into());
    }
    let mac6 = |pos: &mut usize| -> Result<MacAddr, String> {
        let b = take(pos, 6)?;
        Ok(MacAddr::new([b[0], b[1], b[2], b[3], b[4], b[5]]))
    };

    let station_id = |v: u64| -> Result<u16, String> {
        u16::try_from(v).map_err(|_| format!("station id {v} out of range"))
    };
    let n_aps = varint(&mut pos)?;
    if n_aps > 1_000_000 {
        return Err("AP table implausibly large".into());
    }
    let mut aps = HashMap::with_capacity(n_aps as usize);
    for _ in 0..n_aps {
        let id = station_id(varint(&mut pos)?)?;
        aps.insert(id, mac6(&mut pos)?);
    }

    let n = varint(&mut pos)?;
    if n > 1_000_000_000 {
        return Err("record count implausibly large".into());
    }
    let mut records = Vec::with_capacity(n as usize);
    let mut ts = 0u64;
    for _ in 0..n {
        ts += varint(&mut pos)?;
        let src_mac = mac6(&mut pos)?;
        let dst_mac = mac6(&mut pos)?;
        let ap = match varint(&mut pos)? {
            0 => None,
            id => Some(StationId(station_id(id - 1)?)),
        };
        let direction = WiredDirection::from_code(take(&mut pos, 1)?[0])
            .ok_or("bad wired-trace direction code")?;
        let len = varint(&mut pos)? as usize;
        let msdu = Msdu::parse(take(&mut pos, len)?).map_err(|e| format!("bad MSDU: {e}"))?;
        records.push(WiredTraceRecord {
            ts,
            src_mac,
            dst_mac,
            ap,
            direction,
            msdu,
        });
    }
    if pos != bytes.len() {
        return Err(format!(
            "{} trailing bytes after wired trace",
            bytes.len() - pos
        ));
    }
    Ok((records, aps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_packet::{ArpPacket, Msdu};
    use std::net::Ipv4Addr;

    fn host(id: u16) -> WiredHost {
        WiredHost {
            id: HostId(id),
            mac: MacAddr::local(9, u32::from(id)),
            ip: Ipv4Addr::new(172, 16, 0, id as u8),
            latency_us: 300,
            loss_prob: 0.0,
        }
    }

    fn arp_msdu() -> Msdu {
        Msdu::Arp(ArpPacket::who_has(
            [2, 9, 0, 0, 0, 1],
            Ipv4Addr::new(172, 16, 0, 1),
            Ipv4Addr::new(10, 0, 0, 5),
        ))
    }

    #[test]
    fn launch_arrive_roundtrip() {
        let mut w = Wired::new(vec![host(0), host(1)]);
        let pkt = WiredPacket {
            src_mac: MacAddr::local(9, 0),
            dst_mac: MacAddr::BROADCAST,
            msdu: arp_msdu(),
            dst: WiredDst::Ap(StationId(3)),
        };
        let h1 = w.launch(pkt.clone());
        let h2 = w.launch(pkt.clone());
        assert_ne!(h1, h2);
        let got = w.arrive(h1);
        assert_eq!(got.dst, WiredDst::Ap(StationId(3)));
        let _ = w.arrive(h2);
    }

    #[test]
    #[should_panic(expected = "unknown wired handle")]
    fn double_arrive_panics() {
        let mut w = Wired::new(vec![]);
        let h = w.launch(WiredPacket {
            src_mac: MacAddr::ZERO,
            dst_mac: MacAddr::ZERO,
            msdu: arp_msdu(),
            dst: WiredDst::Host(HostId(0)),
        });
        let _ = w.arrive(h);
        let _ = w.arrive(h);
    }

    #[test]
    fn bridge_learning() {
        let mut w = Wired::new(vec![host(0)]);
        let c = MacAddr::local(3, 7);
        assert!(!w.client_ap.contains_key(&c));
        w.learn_client(c, StationId(2));
        assert_eq!(w.client_ap[&c], StationId(2));
        w.learn_client(c, StationId(4)); // roamed
        assert_eq!(w.client_ap[&c], StationId(4));
        w.forget_client(c);
        assert!(!w.client_ap.contains_key(&c));
    }

    #[test]
    fn wired_trace_roundtrips_through_encoding() {
        let rec = |ts: u64, ap: Option<u16>, dir: WiredDirection, msdu: Msdu| WiredTraceRecord {
            ts,
            src_mac: MacAddr::local(9, ts as u32),
            dst_mac: MacAddr::local(3, 7),
            ap: ap.map(StationId),
            direction: dir,
            msdu,
        };
        let records = vec![
            rec(1_000, Some(2), WiredDirection::ToWireless, arp_msdu()),
            rec(1_000, None, WiredDirection::FromWireless, arp_msdu()),
            rec(
                5_500,
                Some(0),
                WiredDirection::ToWireless,
                Msdu::Other {
                    ethertype: 0x86dd,
                    payload: vec![1, 2, 3, 4, 5],
                },
            ),
        ];
        let ap_addr = |sid: u16| MacAddr::local(1, u32::from(sid));
        let bytes = encode_wired_trace(&records, &ap_addr);
        let (got, aps) = decode_wired_trace(&bytes).unwrap();
        assert_eq!(got, records);
        // AP table covers exactly the referenced ids.
        assert_eq!(aps.len(), 2);
        assert_eq!(aps[&0], ap_addr(0));
        assert_eq!(aps[&2], ap_addr(2));

        // Encoding is deterministic, and corruption is detected.
        assert_eq!(bytes, encode_wired_trace(&records, &ap_addr));
        assert!(decode_wired_trace(&bytes[..bytes.len() - 1]).is_err());
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(decode_wired_trace(&bad).is_err());
        // Station ids past u16 are an error, never a silent wraparound.
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&WIRED_TRACE_MAGIC);
        oversized.push(WIRED_TRACE_VERSION);
        jigsaw_trace::varint::put_uvarint(&mut oversized, 1); // one AP entry
        jigsaw_trace::varint::put_uvarint(&mut oversized, 70_000); // id > u16
        oversized.extend_from_slice(ap_addr(0).bytes());
        jigsaw_trace::varint::put_uvarint(&mut oversized, 0); // no records
        assert!(decode_wired_trace(&oversized)
            .unwrap_err()
            .contains("out of range"));
        // Empty trace is fine.
        let (none, table) = decode_wired_trace(&encode_wired_trace(&[], &ap_addr)).unwrap();
        assert!(none.is_empty() && table.is_empty());
    }

    #[test]
    fn host_lookup() {
        // HostId doubles as the index into the host table.
        let w = Wired::new(vec![host(0), host(1)]);
        assert_eq!(w.host_by_mac[&MacAddr::local(9, 1)], HostId(1));
        assert_eq!(w.host_by_ip[&Ipv4Addr::new(172, 16, 0, 1)], HostId(1));
        assert_eq!(w.host(HostId(1)).latency_us, 300);
    }
}
