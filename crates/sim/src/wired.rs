//! The wired distribution network: the switch fabric connecting APs to
//! campus/Internet hosts, the wired-side packet trace (the paper's §6
//! coverage ground truth), and wired-path impairments (latency, loss).

use crate::station::WiredHost;
use crate::{HostId, StationId};
use jigsaw_ieee80211::{MacAddr, Micros};
use jigsaw_packet::Msdu;
use std::collections::HashMap;

/// Destination of a packet in flight on the wired side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WiredDst {
    /// To a wired host (server / router).
    Host(HostId),
    /// To one AP, for wireless transmission.
    Ap(StationId),
}

/// A packet crossing the wired network.
#[derive(Debug, Clone)]
pub struct WiredPacket {
    /// L2 source.
    pub src_mac: MacAddr,
    /// L2 destination (a client MAC, host MAC, or broadcast).
    pub dst_mac: MacAddr,
    /// Payload.
    pub msdu: Msdu,
    /// Where it is headed.
    pub dst: WiredDst,
}

/// Direction of a wired-trace record relative to the wireless network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WiredDirection {
    /// Left the wireless network through an AP.
    FromWireless,
    /// Entered the wireless network through an AP (or will, if bridged).
    ToWireless,
}

/// The wired side of the world: hosts, switch learning table, in-flight
/// packet storage.
#[derive(Debug, Default)]
pub struct Wired {
    /// All wired hosts.
    pub hosts: Vec<WiredHost>,
    /// Switch bridge table: which AP serves a given client MAC.
    pub client_ap: HashMap<MacAddr, StationId>,
    /// Host lookup by MAC.
    pub host_by_mac: HashMap<MacAddr, HostId>,
    /// Host lookup by IP.
    pub host_by_ip: HashMap<std::net::Ipv4Addr, HostId>,
    /// In-flight packets keyed by delivery handle.
    in_flight: HashMap<u64, WiredPacket>,
    next_handle: u64,
}

impl Wired {
    /// Builds the wired network from a host table.
    pub fn new(hosts: Vec<WiredHost>) -> Self {
        let host_by_mac = hosts.iter().map(|h| (h.mac, h.id)).collect();
        let host_by_ip = hosts.iter().map(|h| (h.ip, h.id)).collect();
        Wired {
            hosts,
            client_ap: HashMap::new(),
            host_by_mac,
            host_by_ip,
            in_flight: HashMap::new(),
            next_handle: 0,
        }
    }

    /// Host accessor.
    pub fn host(&self, id: HostId) -> &WiredHost {
        &self.hosts[id.index()]
    }

    /// Registers an in-flight packet; returns the handle to schedule with.
    pub fn launch(&mut self, pkt: WiredPacket) -> u64 {
        let h = self.next_handle;
        self.next_handle += 1;
        self.in_flight.insert(h, pkt);
        h
    }

    /// Claims an arrived packet.
    ///
    /// # Panics
    /// Panics on an unknown handle (scheduling bug).
    pub fn arrive(&mut self, handle: u64) -> WiredPacket {
        self.in_flight
            .remove(&handle)
            .expect("unknown wired handle")
    }

    /// Learns / refreshes a client's serving AP (bridge learning).
    pub fn learn_client(&mut self, client: MacAddr, ap: StationId) {
        self.client_ap.insert(client, ap);
    }

    /// Forgets a client (disassociation).
    pub fn forget_client(&mut self, client: MacAddr) {
        self.client_ap.remove(&client);
    }
}

/// One record of the wired distribution-network trace. This is the exact
/// analogue of the "second trace of the same traffic captured on the wired
/// distribution network" the paper compares coverage against (§6).
#[derive(Debug, Clone)]
pub struct WiredTraceRecord {
    /// True time the packet crossed the building switch, µs.
    pub ts: Micros,
    /// L2 source address.
    pub src_mac: MacAddr,
    /// L2 destination address.
    pub dst_mac: MacAddr,
    /// The AP it entered/left through (None for host↔host chatter).
    pub ap: Option<StationId>,
    /// Direction relative to the wireless side.
    pub direction: WiredDirection,
    /// Decoded payload (headers only are meaningful).
    pub msdu: Msdu,
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_packet::{ArpPacket, Msdu};
    use std::net::Ipv4Addr;

    fn host(id: u16) -> WiredHost {
        WiredHost {
            id: HostId(id),
            mac: MacAddr::local(9, u32::from(id)),
            ip: Ipv4Addr::new(172, 16, 0, id as u8),
            latency_us: 300,
            loss_prob: 0.0,
        }
    }

    fn arp_msdu() -> Msdu {
        Msdu::Arp(ArpPacket::who_has(
            [2, 9, 0, 0, 0, 1],
            Ipv4Addr::new(172, 16, 0, 1),
            Ipv4Addr::new(10, 0, 0, 5),
        ))
    }

    #[test]
    fn launch_arrive_roundtrip() {
        let mut w = Wired::new(vec![host(0), host(1)]);
        let pkt = WiredPacket {
            src_mac: MacAddr::local(9, 0),
            dst_mac: MacAddr::BROADCAST,
            msdu: arp_msdu(),
            dst: WiredDst::Ap(StationId(3)),
        };
        let h1 = w.launch(pkt.clone());
        let h2 = w.launch(pkt.clone());
        assert_ne!(h1, h2);
        let got = w.arrive(h1);
        assert_eq!(got.dst, WiredDst::Ap(StationId(3)));
        let _ = w.arrive(h2);
    }

    #[test]
    #[should_panic(expected = "unknown wired handle")]
    fn double_arrive_panics() {
        let mut w = Wired::new(vec![]);
        let h = w.launch(WiredPacket {
            src_mac: MacAddr::ZERO,
            dst_mac: MacAddr::ZERO,
            msdu: arp_msdu(),
            dst: WiredDst::Host(HostId(0)),
        });
        let _ = w.arrive(h);
        let _ = w.arrive(h);
    }

    #[test]
    fn bridge_learning() {
        let mut w = Wired::new(vec![host(0)]);
        let c = MacAddr::local(3, 7);
        assert!(!w.client_ap.contains_key(&c));
        w.learn_client(c, StationId(2));
        assert_eq!(w.client_ap[&c], StationId(2));
        w.learn_client(c, StationId(4)); // roamed
        assert_eq!(w.client_ap[&c], StationId(4));
        w.forget_client(c);
        assert!(!w.client_ap.contains_key(&c));
    }

    #[test]
    fn host_lookup() {
        // HostId doubles as the index into the host table.
        let w = Wired::new(vec![host(0), host(1)]);
        assert_eq!(w.host_by_mac[&MacAddr::local(9, 1)], HostId(1));
        assert_eq!(w.host_by_ip[&Ipv4Addr::new(172, 16, 0, 1)], HostId(1));
        assert_eq!(w.host(HostId(1)).latency_us, 300);
    }
}
