//! Simulation outputs: per-radio traces, the wired trace, ground truth, and
//! summary statistics.
//!
//! Ground truth is what the real Jigsaw could never have — the actual RF
//! schedule. It exists here to *validate* the pipeline (unification
//! correctness, delivery-inference accuracy, coverage accounting), never to
//! feed it.

use crate::wired::WiredTraceRecord;
use jigsaw_ieee80211::{MacAddr, Micros, PhyRate, Subtype};
use jigsaw_trace::{PhyEvent, RadioMeta};

/// Re-export for convenience in analysis code.
pub type WiredRecord = WiredTraceRecord;

/// One transmission that actually occurred on the air.
#[derive(Debug, Clone)]
pub struct TruthRecord {
    /// True start time (preamble), µs.
    pub start: Micros,
    /// True end time, µs.
    pub end: Micros,
    /// PLCP duration (timestamp reference point for captures).
    pub plcp_us: Micros,
    /// Channel.
    pub channel: u8,
    /// PHY rate.
    pub rate: PhyRate,
    /// Frame subtype (Data, Ack, Cts, Beacon, ...). None for noise bursts.
    pub subtype: Option<Subtype>,
    /// Transmitter (None for noise).
    pub sender: Option<MacAddr>,
    /// Addressed receiver (None for noise).
    pub receiver: Option<MacAddr>,
    /// 802.11 sequence number if the frame carries one.
    pub seq: Option<u16>,
    /// Retry bit.
    pub retry: bool,
    /// On-air length in bytes.
    pub wire_len: u32,
    /// True for microwave-style noise bursts.
    pub is_noise: bool,
    /// Frame-exchange id this transmission belongs to (u64::MAX if none).
    pub xid: u64,
    /// For unicast frames: did the addressed receiver decode it?
    pub delivered: Option<bool>,
    /// Number of monitor radios that logged any event for it.
    pub captures: u16,
}

/// Ground truth for one link-layer frame exchange (one MSDU lifetime).
#[derive(Debug, Clone)]
pub struct TruthExchange {
    /// Exchange id (referenced by [`TruthRecord::xid`]).
    pub xid: u64,
    /// Sender.
    pub sender: MacAddr,
    /// Receiver.
    pub receiver: MacAddr,
    /// Transmission attempts made (1 = no retries).
    pub attempts: u8,
    /// Did the receiver ever decode the data frame?
    pub delivered: bool,
    /// Did the sender ever get an ACK (sender-side success)?
    pub acked: bool,
    /// True time of the first attempt.
    pub first_tx: Micros,
    /// True time of the last attempt's end.
    pub last_tx: Micros,
}

/// The complete RF/exchange ground truth for a run.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Every transmission, in start-time order.
    pub transmissions: Vec<TruthRecord>,
    /// Every unicast frame exchange.
    pub exchanges: Vec<TruthExchange>,
}

/// Kind and capability of a station, for analysis bookkeeping.
#[derive(Debug, Clone)]
pub struct StationInfo {
    /// MAC address.
    pub addr: MacAddr,
    /// True for APs.
    pub is_ap: bool,
    /// True for 802.11b-only clients.
    pub b_only: bool,
    /// True for external/rogue APs (outside the monitored network).
    pub external: bool,
    /// Operating channel.
    pub channel: u8,
    /// Position (x, y, z) meters.
    pub pos: (f64, f64, f64),
}

/// Aggregate counters from a run.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Total 802.11 frames transmitted on the air.
    pub frames_transmitted: u64,
    /// MSDUs dropped at MAC queues (overflow).
    pub queue_drops: u64,
    /// Frame exchanges abandoned after the retry limit.
    pub retry_failures: u64,
    /// Packets lost on the wired path.
    pub wired_losses: u64,
    /// TCP flows opened.
    pub flows_opened: u64,
    /// TCP flows that ran to completion.
    pub flows_completed: u64,
    /// Total capture events across all monitor radios.
    pub capture_events: u64,
    /// Noise bursts emitted by interferers.
    pub noise_bursts: u64,
    /// TCP RTO retransmissions across all endpoints.
    pub tcp_rto_retx: u64,
    /// TCP fast retransmissions across all endpoints.
    pub tcp_fast_retx: u64,
}

/// Everything a run produces.
#[derive(Debug)]
pub struct SimOutput {
    /// Per-radio metadata (index = radio id).
    pub radio_meta: Vec<RadioMeta>,
    /// Per-radio event traces (index = radio id), local-time sorted.
    pub traces: Vec<Vec<PhyEvent>>,
    /// The wired distribution-network trace, true-time sorted.
    pub wired: Vec<WiredRecord>,
    /// Ground truth.
    pub truth: GroundTruth,
    /// Station inventory.
    pub stations: Vec<StationInfo>,
    /// Aggregate counters.
    pub stats: SimStats,
    /// Simulated duration, µs.
    pub duration_us: Micros,
}

impl SimOutput {
    /// Total capture events across all radios.
    pub fn total_events(&self) -> u64 {
        self.traces.iter().map(|t| t.len() as u64).sum()
    }

    /// Converts the in-memory traces into per-radio `MemoryStream`s for the
    /// pipeline (consumes nothing; clones the events).
    pub fn memory_streams(&self) -> Vec<jigsaw_trace::stream::MemoryStream> {
        self.radio_meta
            .iter()
            .zip(self.traces.iter())
            .map(|(meta, evs)| jigsaw_trace::stream::MemoryStream::new(*meta, evs.clone()))
            .collect()
    }
}
