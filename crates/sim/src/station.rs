//! Stations: access points and clients, with the role-specific state the
//! paper's analyses observe — association handshakes, beaconing, wired
//! bridging, and the 802.11g protection-mode policy with its overly
//! conservative timeout (§7.3).

use crate::mac::Mac;
use crate::{HostId, StationId};
use jigsaw_ieee80211::{MacAddr, Micros};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Per-associated-client record kept by an AP.
#[derive(Debug, Clone)]
pub struct AssocInfo {
    /// Association ID handed out.
    pub aid: u16,
    /// Whether the client is 802.11b-only (drives protection).
    pub b_only: bool,
    /// When the association completed (true time).
    pub since: Micros,
}

/// Access-point specific state.
#[derive(Debug)]
pub struct ApState {
    /// Network name broadcast in beacons.
    pub ssid: Vec<u8>,
    /// Associated clients.
    pub clients: HashMap<MacAddr, AssocInfo>,
    /// Next association id.
    pub next_aid: u16,
    /// Whether 802.11g protection mode is currently on.
    pub protection_on: bool,
    /// Last true time an 802.11b client was sensed (associated client
    /// traffic, probe, or association).
    pub last_b_seen: Micros,
    /// How long after the last b-sighting protection stays on.
    /// The paper's production APs use a *one hour* timeout — the root of
    /// the overprotective-AP finding.
    pub protection_timeout_us: Micros,
    /// True for APs in neighboring buildings / rogue APs: they beacon and
    /// carry no modeled clients, existing to populate the trace edges.
    pub external: bool,
}

impl ApState {
    /// Fresh AP state.
    pub fn new(ssid: Vec<u8>, protection_timeout_us: Micros, external: bool) -> Self {
        ApState {
            ssid,
            clients: HashMap::new(),
            next_aid: 1,
            protection_on: false,
            last_b_seen: 0,
            protection_timeout_us,
            external,
        }
    }

    /// Notes evidence of an 802.11b station in range; enables protection.
    pub fn saw_b_client(&mut self, now: Micros) {
        self.last_b_seen = now;
        self.protection_on = true;
    }

    /// Re-evaluates the protection timeout; returns true if protection was
    /// switched off.
    pub fn maybe_expire_protection(&mut self, now: Micros) -> bool {
        if self.protection_on && now.saturating_sub(self.last_b_seen) >= self.protection_timeout_us
        {
            // Also require that no *currently associated* client is b-only.
            if !self.clients.values().any(|c| c.b_only) {
                self.protection_on = false;
                return true;
            }
        }
        false
    }

    /// Does any associated client lack ERP (is 802.11b-only)?
    pub fn has_b_client(&self) -> bool {
        self.clients.values().any(|c| c.b_only)
    }
}

/// Client association phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssocPhase {
    /// Radio on, not yet looking for a network.
    Dormant,
    /// Broadcasting probe requests, collecting responses.
    Probing,
    /// Sent AUTH, awaiting response from the chosen AP.
    Authenticating,
    /// Sent ASSOC-REQ, awaiting response.
    Associating,
    /// Fully associated.
    Associated,
}

/// Client-specific state.
#[derive(Debug)]
pub struct ClientState {
    /// Legacy 802.11b-only hardware.
    pub b_only: bool,
    /// Current phase of the association state machine.
    pub phase: AssocPhase,
    /// The AP we are (or are becoming) associated with.
    pub ap: Option<StationId>,
    /// Best probe response seen this scan: (AP, rx power deci-dBm).
    pub best_probe: Option<(StationId, MacAddr, i32)>,
    /// Whether the serving AP currently signals protection (from beacons).
    pub ap_protection: bool,
    /// Diurnal session: true while the user is active.
    pub session_active: bool,
    /// True time the current/most recent session started.
    pub session_start: Micros,
    /// True time the session ends (departure).
    pub session_end: Micros,
    /// This client stays on overnight running background traffic.
    pub overnight: bool,
    /// Workload program counter (interpreted by `traffic`).
    pub work_step: u32,
    /// Retries of the current association stage.
    pub assoc_retries: u8,
    /// Flows currently in progress for this client.
    pub active_flows: Vec<u32>,
    /// Generation guard for this client's app timer.
    pub app_gen: u32,
    /// Traffic class driving activity selection (QoS-mix scenarios).
    pub workload: crate::traffic::WorkloadClass,
    /// How many times this client has roamed (picks the next AP).
    pub roam_count: u32,
}

impl ClientState {
    /// Fresh client state.
    pub fn new(b_only: bool, session_start: Micros, session_end: Micros, overnight: bool) -> Self {
        ClientState {
            b_only,
            phase: AssocPhase::Dormant,
            ap: None,
            best_probe: None,
            ap_protection: false,
            session_active: false,
            session_start,
            session_end,
            overnight,
            work_step: 0,
            assoc_retries: 0,
            active_flows: Vec::new(),
            app_gen: 0,
            workload: crate::traffic::WorkloadClass::Mixed,
            roam_count: 0,
        }
    }
}

/// Station role.
#[derive(Debug)]
pub enum Role {
    /// An access point.
    Ap(ApState),
    /// A wireless client.
    Client(ClientState),
}

impl Role {
    /// AP state accessor.
    pub fn as_ap(&self) -> Option<&ApState> {
        match self {
            Role::Ap(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable AP state accessor.
    pub fn as_ap_mut(&mut self) -> Option<&mut ApState> {
        match self {
            Role::Ap(a) => Some(a),
            _ => None,
        }
    }

    /// Client state accessor.
    pub fn as_client(&self) -> Option<&ClientState> {
        match self {
            Role::Client(c) => Some(c),
            _ => None,
        }
    }

    /// Mutable client state accessor.
    pub fn as_client_mut(&mut self) -> Option<&mut ClientState> {
        match self {
            Role::Client(c) => Some(c),
            _ => None,
        }
    }
}

/// A station: MAC layer plus role state plus network identity.
#[derive(Debug)]
pub struct Station {
    /// Our id.
    pub id: StationId,
    /// Index of this station's radio entity in the medium.
    pub entity: u32,
    /// Role-specific state.
    pub role: Role,
    /// The DCF MAC.
    pub mac: Mac,
    /// IP address (clients and APs both get one; APs' is unused for data).
    pub ip: Ipv4Addr,
    /// For clients: the wired host each flow talks to is chosen by traffic;
    /// kept here for the ARP server's registry.
    pub registered_with_vernier: bool,
    /// Frames transmitted (stat).
    pub tx_frames: u64,
    /// Frames received ok and addressed to us (stat).
    pub rx_frames: u64,
}

impl Station {
    /// Creates a station.
    pub fn new(id: StationId, entity: u32, role: Role, mac: Mac, ip: Ipv4Addr) -> Self {
        Station {
            id,
            entity,
            role,
            mac,
            ip,
            registered_with_vernier: false,
            tx_frames: 0,
            rx_frames: 0,
        }
    }

    /// Is this an AP?
    pub fn is_ap(&self) -> bool {
        matches!(self.role, Role::Ap(_))
    }

    /// The BSSID this station currently operates under (its own address for
    /// APs; the serving AP's address for associated clients, else None).
    pub fn addr(&self) -> MacAddr {
        self.mac.addr
    }
}

/// A wired host (server) reachable through the distribution network.
#[derive(Debug, Clone)]
pub struct WiredHost {
    /// Host id.
    pub id: HostId,
    /// Its MAC address on the distribution LAN (or the router's, for
    /// Internet hosts — indistinguishable to the wireless side).
    pub mac: MacAddr,
    /// Its IP address.
    pub ip: Ipv4Addr,
    /// One-way latency from the building LAN, µs.
    pub latency_us: Micros,
    /// Packet loss probability on the wired path (Internet hosts > 0).
    pub loss_prob: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_lifecycle() {
        let mut ap = ApState::new(b"test".to_vec(), 1_000_000, false);
        assert!(!ap.protection_on);
        ap.saw_b_client(100);
        assert!(ap.protection_on);
        // Too early to expire.
        assert!(!ap.maybe_expire_protection(500_000));
        assert!(ap.protection_on);
        // Past the timeout with no associated b clients → off.
        assert!(ap.maybe_expire_protection(1_100_100));
        assert!(!ap.protection_on);
    }

    #[test]
    fn protection_sticky_while_b_client_associated() {
        let mut ap = ApState::new(b"test".to_vec(), 1_000_000, false);
        ap.saw_b_client(0);
        ap.clients.insert(
            MacAddr::local(3, 1),
            AssocInfo {
                aid: 1,
                b_only: true,
                since: 0,
            },
        );
        assert!(!ap.maybe_expire_protection(10_000_000));
        assert!(ap.protection_on);
        ap.clients.clear();
        assert!(ap.maybe_expire_protection(10_000_000));
    }

    #[test]
    fn role_accessors() {
        let mut r = Role::Ap(ApState::new(b"x".to_vec(), 1, false));
        assert!(r.as_ap().is_some());
        assert!(r.as_client().is_none());
        assert!(r.as_ap_mut().is_some());
        let mut c = Role::Client(ClientState::new(false, 0, 10, false));
        assert!(c.as_client().is_some());
        assert!(c.as_ap().is_none());
        assert!(c.as_client_mut().is_some());
    }
}
