//! The discrete-event queue driving the simulator.

use jigsaw_ieee80211::Micros;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{HostId, StationId};

/// Timer kinds delivered to a station's MAC (see `mac`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacTimerKind {
    /// One backoff slot elapsed.
    BackoffSlot,
    /// The ACK we were waiting for did not arrive.
    AckTimeout,
    /// SIFS elapsed: perform the queued immediate response
    /// (send an ACK, or the DATA stage of a CTS-to-self exchange).
    SifsAction,
}

/// Everything that can happen in the world.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A transmission finishes; receivers resolve their outcomes.
    TxEnd {
        /// Medium transmission id.
        tx_id: u64,
    },
    /// A MAC-level timer for one station. `gen` guards against stale timers.
    MacTimer {
        /// The station.
        station: StationId,
        /// Generation at scheduling time.
        gen: u32,
        /// What to do.
        kind: MacTimerKind,
    },
    /// Time to enqueue the next beacon at an AP.
    Beacon {
        /// The AP.
        station: StationId,
    },
    /// A packet crossed the wired network and arrives at an AP for wireless
    /// delivery, or at a wired host.
    WiredArrival {
        /// Index into the pending wired-packet table.
        handle: u64,
    },
    /// A TCP endpoint timer (retransmission or delayed work).
    TcpTimer {
        /// Flow index.
        flow: u32,
        /// Generation guard.
        gen: u32,
    },
    /// Client lifecycle / workload progression.
    AppTimer {
        /// The client station.
        station: StationId,
        /// Generation guard.
        gen: u32,
    },
    /// The microwave oven toggles a noise burst.
    NoiseBurst {
        /// Interferer entity id.
        entity: u32,
    },
    /// An AP re-evaluates its protection-mode timeout.
    ProtectionCheck {
        /// The AP.
        station: StationId,
    },
    /// The management server ARP-scans the next registered client.
    VernierArp,
    /// A wired host application acts (e.g. produces response bytes).
    HostApp {
        /// The host.
        host: HostId,
        /// Flow index the action belongs to.
        flow: u32,
    },
    /// A user session starts or ends (diurnal lifecycle).
    ClientLifecycle {
        /// The client.
        station: StationId,
        /// True to activate, false to deactivate.
        activate: bool,
    },
    /// The next keystroke burst of an interactive ssh flow.
    SshKeystroke {
        /// Flow index.
        flow: u32,
    },
    /// The periodic MS-Office-style UDP broadcast from a client.
    OfficeBroadcast {
        /// The client.
        station: StationId,
    },
    /// A roaming client walks to (near) its next AP, retunes and rescans.
    ClientRoam {
        /// The client.
        station: StationId,
        /// How long it stays before roaming again (the event reschedules
        /// itself with the same dwell).
        dwell_us: Micros,
    },
    /// An AP is re-allocated to a new channel mid-run (site survey /
    /// interference mitigation), dropping its associations.
    ChannelRealloc {
        /// The AP.
        station: StationId,
        /// New channel number.
        channel: u8,
    },
    /// A client follows its AP's channel re-allocation: retune + rescan.
    ClientRetune {
        /// The client.
        station: StationId,
        /// New channel number.
        channel: u8,
    },
}

#[derive(Debug)]
struct HeapItem {
    time: Micros,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap: earliest time first, FIFO within a time.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap event queue (ties broken by insertion order).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapItem>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at absolute time `time`.
    pub fn schedule(&mut self, time: Micros, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapItem { time, seq, kind });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Micros, EventKind)> {
        self.heap.pop().map(|i| (i.time, i.kind))
    }

    /// Next event time without popping.
    pub fn peek_time(&self) -> Option<Micros> {
        self.heap.peek().map(|i| i.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, EventKind::VernierArp);
        q.schedule(10, EventKind::VernierArp);
        q.schedule(20, EventKind::VernierArp);
        let times: Vec<Micros> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn fifo_within_same_time() {
        let mut q = EventQueue::new();
        q.schedule(
            5,
            EventKind::Beacon {
                station: StationId(1),
            },
        );
        q.schedule(
            5,
            EventKind::Beacon {
                station: StationId(2),
            },
        );
        q.schedule(
            5,
            EventKind::Beacon {
                station: StationId(3),
            },
        );
        let mut ids = Vec::new();
        while let Some((_, EventKind::Beacon { station })) = q.pop() {
            ids.push(station.0);
        }
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(7, EventKind::VernierArp);
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
    }
}
