//! Per-station 802.11 DCF MAC state.
//!
//! This module holds the *data* of the MAC state machine — queue, backoff,
//! NAV, retry and rate-adaptation state. The *transitions* are driven by the
//! world's event loop (`world`), which owns the medium and the event queue.
//!
//! Modeled faithfully (because the paper's link-layer reconstruction
//! recovers exactly these behaviours): DIFS deferral, binary-exponential
//! backoff frozen while the medium is busy, SIFS-spaced ACKs, retry bit +
//! per-station 12-bit sequence numbers, duration/NAV virtual carrier sense,
//! CTS-to-self 802.11g protection, ARF rate adaptation, retry limits.

use jigsaw_ieee80211::frame::MgmtBody;
use jigsaw_ieee80211::timing::{Preamble, CW_MAX, CW_MIN_B, CW_MIN_G};
use jigsaw_ieee80211::{MacAddr, Micros, PhyRate, SeqNum};
use std::collections::{HashMap, VecDeque};

/// Retry limit per MPDU. Large data frames use dot11LongRetryLimit = 4
/// (they exceed the RTS threshold); we apply it uniformly.
pub const RETRY_LIMIT: u8 = 4;

/// Maximum MPDUs queued per station before tail drop (models the AP
/// per-interface queue whose overflow is a major TCP loss source in WLANs).
pub const QUEUE_LIMIT: usize = 64;

/// What an MPDU carries.
#[derive(Debug, Clone)]
pub enum MpduKind {
    /// A data frame with an MSDU payload (LLC/SNAP + network packet).
    Msdu {
        /// Serialized LLC/SNAP + payload bytes.
        bytes: Vec<u8>,
        /// addr3: the final destination for ToDS frames, the original
        /// source for FromDS frames.
        addr3: MacAddr,
        /// True for client→AP frames.
        to_ds: bool,
        /// True for AP→client frames.
        from_ds: bool,
    },
    /// A management frame.
    Mgmt(MgmtBody),
    /// A NULL-data frame.
    Null,
}

/// One queued MPDU awaiting transmission.
#[derive(Debug, Clone)]
pub struct Mpdu {
    /// Receiver address (addr1).
    pub dst: MacAddr,
    /// Payload.
    pub kind: MpduKind,
    /// Retries so far (0 on first attempt).
    pub retries: u8,
    /// Sequence number: assigned when the first attempt starts, and kept
    /// across retries (the retry bit + same seq is what Jigsaw's exchange
    /// FSM keys on).
    pub seq: Option<SeqNum>,
    /// When the MPDU entered the queue (true time).
    pub enqueued_at: Micros,
    /// Ground-truth exchange id assigned at enqueue (for validation).
    pub truth_xid: u64,
}

impl Mpdu {
    /// Whether this MPDU expects a link-layer ACK.
    pub fn needs_ack(&self) -> bool {
        self.dst.is_unicast()
    }
}

/// The immediate (SIFS-spaced) action a station owes the medium.
#[derive(Debug, Clone)]
pub enum SifsAction {
    /// Send an ACK to `to` (we just received their unicast frame).
    SendAck {
        /// Station being acknowledged.
        to: MacAddr,
        /// The rate to answer at (basic rate ≤ the data rate).
        rate: PhyRate,
    },
    /// Send the DATA stage of a CTS-to-self protected exchange.
    SendProtectedData,
}

/// MAC state machine phase.
#[derive(Debug, Clone, PartialEq)]
pub enum MacPhase {
    /// Nothing to do (queue may be empty or medium contention not started).
    Idle,
    /// Counting down backoff slots (paused while the medium is busy).
    Backoff,
    /// Our own CTS-to-self is in flight.
    TxCts,
    /// Our own DATA/management frame is in flight.
    TxData,
    /// Waiting SIFS before the protected DATA stage.
    WaitSifs,
    /// DATA sent, waiting for the ACK (timeout scheduled).
    WaitAck,
}

/// ARF (Automatic Rate Fallback) per-destination state.
#[derive(Debug, Clone)]
pub struct ArfState {
    /// Current rate for this destination.
    pub rate: PhyRate,
    /// Consecutive successes at this rate.
    pub successes: u32,
    /// Consecutive failures at this rate.
    pub failures: u32,
}

/// Successes needed before ARF probes the next faster rate.
pub const ARF_UP_THRESHOLD: u32 = 10;
/// Consecutive failures that trigger a rate step-down.
pub const ARF_DOWN_THRESHOLD: u32 = 2;

/// Per-station MAC state.
#[derive(Debug)]
pub struct Mac {
    /// Our MAC address.
    pub addr: MacAddr,
    /// True for 802.11b-only hardware.
    pub b_only: bool,
    /// Preamble flavor used for CCK transmissions.
    pub preamble: Preamble,
    /// Transmit queue; head is the MPDU in service.
    pub queue: VecDeque<Mpdu>,
    /// Current phase.
    pub phase: MacPhase,
    /// Pending SIFS action (valid in `WaitSifs`).
    pub sifs_action: Option<SifsAction>,
    /// Remaining backoff slots.
    pub backoff_slots: u32,
    /// Current contention window.
    pub cw: u16,
    /// Next sequence number to assign.
    pub seq_counter: SeqNum,
    /// NAV: medium reserved (virtually) until this true time.
    pub nav_until: Micros,
    /// Number of transmissions we currently sense on the air.
    pub sensed: u32,
    /// True time at which the medium last became idle for us
    /// (used for the DIFS + slot bookkeeping).
    pub idle_since: Micros,
    /// One of our own transmissions (head or response) is on the air.
    pub radio_busy: bool,
    /// Generation guard for backoff-slot timers.
    pub gen_backoff: u32,
    /// Generation guard for SIFS-action timers.
    pub gen_resp: u32,
    /// Generation guard for ACK timeouts.
    pub gen_ack: u32,
    /// Whether 802.11g protection (CTS-to-self before OFDM) is in force.
    pub protection: bool,
    /// ARF state per destination.
    pub arf: HashMap<MacAddr, ArfState>,
    /// Cap on the rate usable toward a peer (learned from rate-set IEs).
    pub peer_cap: HashMap<MacAddr, PhyRate>,
    /// MPDUs dropped due to queue overflow (stat).
    pub queue_drops: u64,
    /// MPDUs abandoned after the retry limit (stat).
    pub retry_failures: u64,
}

impl Mac {
    /// A fresh MAC.
    pub fn new(addr: MacAddr, b_only: bool) -> Self {
        Mac {
            addr,
            b_only,
            preamble: Preamble::Long,
            queue: VecDeque::new(),
            phase: MacPhase::Idle,
            sifs_action: None,
            backoff_slots: 0,
            cw: if b_only { CW_MIN_B } else { CW_MIN_G },
            seq_counter: SeqNum::new(0),
            nav_until: 0,
            sensed: 0,
            idle_since: 0,
            radio_busy: false,
            gen_backoff: 0,
            gen_resp: 0,
            gen_ack: 0,
            protection: false,
            arf: HashMap::new(),
            peer_cap: HashMap::new(),
            queue_drops: 0,
            retry_failures: 0,
        }
    }

    /// The minimum contention window for this station right now.
    pub fn cw_min(&self) -> u16 {
        if self.b_only || self.protection {
            CW_MIN_B
        } else {
            CW_MIN_G
        }
    }

    /// Is the medium busy for us at `now` (physical or virtual carrier)?
    pub fn medium_busy(&self, now: Micros) -> bool {
        self.sensed > 0 || self.nav_until > now
    }

    /// Enqueues an MPDU (tail-dropping at [`QUEUE_LIMIT`]).
    /// Returns false when dropped.
    pub fn enqueue(&mut self, mpdu: Mpdu) -> bool {
        if self.queue.len() >= QUEUE_LIMIT {
            self.queue_drops += 1;
            return false;
        }
        self.queue.push_back(mpdu);
        true
    }

    /// Takes the next sequence number (advancing the counter).
    pub fn next_seq(&mut self) -> SeqNum {
        let s = self.seq_counter;
        self.seq_counter = self.seq_counter.next();
        s
    }

    /// Doubles the contention window after a failed attempt.
    pub fn grow_cw(&mut self) {
        self.cw = (self.cw * 2 + 1).min(CW_MAX);
    }

    /// Resets the contention window after a completed exchange.
    pub fn reset_cw(&mut self) {
        self.cw = self.cw_min();
    }

    /// Invalidates outstanding backoff-slot timers; returns the new gen.
    pub fn bump_backoff(&mut self) -> u32 {
        self.gen_backoff = self.gen_backoff.wrapping_add(1);
        self.gen_backoff
    }

    /// Invalidates outstanding SIFS-action timers; returns the new gen.
    pub fn bump_resp(&mut self) -> u32 {
        self.gen_resp = self.gen_resp.wrapping_add(1);
        self.gen_resp
    }

    /// Invalidates outstanding ACK timeouts; returns the new gen.
    pub fn bump_ack(&mut self) -> u32 {
        self.gen_ack = self.gen_ack.wrapping_add(1);
        self.gen_ack
    }

    /// The fastest rate this station may use toward `dst` (own capability
    /// ∧ peer capability; unknown peers get the safe CCK ceiling).
    pub fn rate_cap(&self, dst: MacAddr) -> PhyRate {
        let own = if self.b_only {
            PhyRate::R11
        } else {
            PhyRate::R54
        };
        let peer = if dst.is_multicast() {
            // Group-addressed frames go at a basic rate everyone decodes.
            PhyRate::R1
        } else {
            self.peer_cap.get(&dst).copied().unwrap_or(PhyRate::R11)
        };
        own.min(peer)
    }

    /// The ARF-selected rate toward `dst`, clamped to the capability cap.
    pub fn current_rate(&mut self, dst: MacAddr) -> PhyRate {
        let cap = self.rate_cap(dst);
        let e = self.arf.entry(dst).or_insert(ArfState {
            rate: PhyRate::R11.min(cap),
            successes: 0,
            failures: 0,
        });
        if e.rate > cap {
            e.rate = cap;
        }
        e.rate
    }

    /// Records the outcome of a frame exchange toward `dst` and walks the
    /// ARF ladder.
    pub fn arf_feedback(&mut self, dst: MacAddr, success: bool) {
        let cap = self.rate_cap(dst);
        let e = self.arf.entry(dst).or_insert(ArfState {
            rate: PhyRate::R11.min(cap),
            successes: 0,
            failures: 0,
        });
        if success {
            e.successes += 1;
            e.failures = 0;
            if e.successes >= ARF_UP_THRESHOLD {
                e.successes = 0;
                if let Some(up) = e.rate.step_up() {
                    if up <= cap {
                        e.rate = up;
                    }
                }
            }
        } else {
            e.failures += 1;
            e.successes = 0;
            if e.failures >= ARF_DOWN_THRESHOLD {
                e.failures = 0;
                if let Some(down) = e.rate.step_down() {
                    e.rate = down;
                }
            }
        }
    }

    /// Should this (g-capable) station protect a transmission at `rate`?
    pub fn needs_protection(&self, rate: PhyRate) -> bool {
        self.protection && !rate.is_b_compatible()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac() -> Mac {
        Mac::new(MacAddr::local(1, 1), false)
    }

    fn mpdu(dst: MacAddr) -> Mpdu {
        Mpdu {
            dst,
            kind: MpduKind::Null,
            retries: 0,
            seq: None,
            enqueued_at: 0,
            truth_xid: 0,
        }
    }

    #[test]
    fn seq_counter_wraps() {
        let mut m = mac();
        m.seq_counter = SeqNum::new(4095);
        assert_eq!(m.next_seq().value(), 4095);
        assert_eq!(m.next_seq().value(), 0);
    }

    #[test]
    fn cw_growth_and_reset() {
        let mut m = mac();
        assert_eq!(m.cw, CW_MIN_G);
        m.grow_cw();
        assert_eq!(m.cw, CW_MIN_G * 2 + 1);
        for _ in 0..20 {
            m.grow_cw();
        }
        assert_eq!(m.cw, CW_MAX);
        m.reset_cw();
        assert_eq!(m.cw, CW_MIN_G);
    }

    #[test]
    fn cw_min_depends_on_protection() {
        let mut m = mac();
        assert_eq!(m.cw_min(), CW_MIN_G);
        m.protection = true;
        assert_eq!(m.cw_min(), CW_MIN_B);
        let b = Mac::new(MacAddr::local(1, 2), true);
        assert_eq!(b.cw_min(), CW_MIN_B);
    }

    #[test]
    fn queue_limit_drops() {
        let mut m = mac();
        let dst = MacAddr::local(2, 2);
        for _ in 0..QUEUE_LIMIT {
            assert!(m.enqueue(mpdu(dst)));
        }
        assert!(!m.enqueue(mpdu(dst)));
        assert_eq!(m.queue_drops, 1);
        assert_eq!(m.queue.len(), QUEUE_LIMIT);
    }

    #[test]
    fn medium_busy_via_nav_or_sense() {
        let mut m = mac();
        assert!(!m.medium_busy(100));
        m.sensed = 1;
        assert!(m.medium_busy(100));
        m.sensed = 0;
        m.nav_until = 500;
        assert!(m.medium_busy(499));
        assert!(!m.medium_busy(500));
    }

    #[test]
    fn arf_walks_up_after_successes() {
        let mut m = mac();
        let dst = MacAddr::local(2, 9);
        m.peer_cap.insert(dst, PhyRate::R54);
        let start = m.current_rate(dst);
        assert_eq!(start, PhyRate::R11);
        for _ in 0..ARF_UP_THRESHOLD {
            m.arf_feedback(dst, true);
        }
        assert_eq!(m.current_rate(dst), PhyRate::R12);
    }

    #[test]
    fn arf_steps_down_after_failures() {
        let mut m = mac();
        let dst = MacAddr::local(2, 9);
        m.peer_cap.insert(dst, PhyRate::R54);
        m.arf.insert(
            dst,
            ArfState {
                rate: PhyRate::R54,
                successes: 0,
                failures: 0,
            },
        );
        m.arf_feedback(dst, false);
        assert_eq!(m.current_rate(dst), PhyRate::R54);
        m.arf_feedback(dst, false);
        assert_eq!(m.current_rate(dst), PhyRate::R48);
    }

    #[test]
    fn rate_capped_by_peer_capability() {
        let mut m = mac();
        let legacy = MacAddr::local(2, 1);
        m.peer_cap.insert(legacy, PhyRate::R11);
        for _ in 0..100 {
            m.arf_feedback(legacy, true);
        }
        assert!(m.current_rate(legacy).is_b_compatible());
        // Unknown peer: safe ceiling.
        let unknown = MacAddr::local(2, 77);
        assert_eq!(m.rate_cap(unknown), PhyRate::R11);
        // Broadcast: basic rate.
        assert_eq!(m.rate_cap(MacAddr::BROADCAST), PhyRate::R1);
    }

    #[test]
    fn b_only_station_never_exceeds_11mbps() {
        let mut m = Mac::new(MacAddr::local(1, 3), true);
        let dst = MacAddr::local(2, 9);
        m.peer_cap.insert(dst, PhyRate::R54);
        for _ in 0..200 {
            m.arf_feedback(dst, true);
        }
        assert!(m.current_rate(dst) <= PhyRate::R11);
    }

    #[test]
    fn protection_gates_on_modulation() {
        let mut m = mac();
        m.protection = true;
        assert!(m.needs_protection(PhyRate::R54));
        assert!(!m.needs_protection(PhyRate::R11));
        m.protection = false;
        assert!(!m.needs_protection(PhyRate::R54));
    }
}
