//! Parameterized adversarial scenarios: composable, seed-deterministic
//! traffic shapes layered on top of a base [`ScenarioConfig`].
//!
//! The base presets (`tiny`/`small`/`paper_day`) exercise one happy-path
//! office shape. A [`ScenarioSpec`] perturbs that shape along the axes the
//! related measurement literature stresses — roaming clients, hidden
//! terminals, co-channel interference with mid-run channel re-allocation,
//! b/g protection-mode coexistence, QoS/fairness traffic mixes, and
//! error-rate stress — each independently composable and exactly
//! reproducible from `(spec, seed)`.
//!
//! [`ScenarioSpec::sweep_matrix`] is the named matrix `repro sweep` runs as
//! a standing golden-record harness: every merge-equivalence contract must
//! hold over every shape here, not just the happy path.

use crate::event::EventKind;
use crate::output::SimOutput;
use crate::prop::CS_PREAMBLE_DDBM;
use crate::scenario::{ScenarioConfig, TruthConfig};
use crate::traffic::WorkloadClass;
use crate::world::World;
use crate::StationId;
use jigsaw_ieee80211::{Channel, Micros};

/// A subset of clients periodically walks to the next AP mid-session.
#[derive(Debug, Clone, PartialEq)]
pub struct Roaming {
    /// How many clients roam (the first `roamers` clients).
    pub roamers: usize,
    /// Dwell time at each AP before moving on.
    pub dwell_us: Micros,
}

/// Client pairs placed on opposite sides of an AP, mutually below the
/// carrier-sense threshold but both decodable at the AP — the classic
/// hidden-terminal collision generator. Both clients run bulk transfers to
/// maximize airtime overlap.
#[derive(Debug, Clone, PartialEq)]
pub struct HiddenTerminals {
    /// Number of hidden pairs (pair `k` straddles AP `k % n_aps`).
    pub pairs: usize,
}

/// Every internal AP (and client) starts co-channel; optionally a mid-run
/// re-allocation spreads the APs back over the orthogonal channels, with
/// clients following via staggered retunes.
#[derive(Debug, Clone, PartialEq)]
pub struct CoChannel {
    /// The shared starting channel.
    pub channel: u8,
    /// When set, APs are re-allocated (staggered) starting at this time.
    pub realloc_at_us: Option<Micros>,
}

/// Mid-run session churn: every client goes away and comes back, forcing
/// disassociation floods and re-association bursts (drives protection-mode
/// transitions when b-only clients are present).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionChurn {
    /// When clients start dropping (staggered per client).
    pub off_at_us: Micros,
    /// When they start coming back (staggered per client).
    pub on_at_us: Micros,
}

/// Per-class client allocation for QoS/fairness mixes: the first `bulk`
/// clients run bulk scp (alternating up/down), the next `interactive` run
/// ssh-dominated sessions, the rest keep the paper's default mix.
#[derive(Debug, Clone, PartialEq)]
pub struct QosMix {
    /// Bulk-class clients.
    pub bulk: usize,
    /// Interactive-class clients.
    pub interactive: usize,
}

/// A composable, seed-deterministic adversarial scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Stable name (golden files and the sweep matrix key off it).
    pub name: String,
    /// Base world shape; its `seed` field is overridden at build time.
    pub base: ScenarioConfig,
    /// Roaming clients.
    pub roaming: Option<Roaming>,
    /// Hidden-terminal pairs.
    pub hidden: Option<HiddenTerminals>,
    /// Co-channel start and optional mid-run re-allocation.
    pub cochannel: Option<CoChannel>,
    /// Mid-run session churn.
    pub churn: Option<SessionChurn>,
    /// QoS traffic-class allocation.
    pub qos: Option<QosMix>,
}

impl ScenarioSpec {
    /// A plain spec with no perturbations.
    pub fn plain(name: &str, base: ScenarioConfig) -> Self {
        ScenarioSpec {
            name: name.to_string(),
            base,
            roaming: None,
            hidden: None,
            cochannel: None,
            churn: None,
            qos: None,
        }
    }

    /// Builds the world for this spec under `seed`, applying every
    /// configured perturbation in a fixed order.
    pub fn build(&self, seed: u64) -> World {
        let mut cfg = self.base.clone();
        cfg.seed = seed;
        let mut world = cfg.build();
        if let Some(q) = &self.qos {
            apply_qos(&mut world, q);
        }
        if let Some(h) = &self.hidden {
            apply_hidden(&mut world, h);
        }
        if let Some(c) = &self.cochannel {
            apply_cochannel(&mut world, c);
        }
        if let Some(r) = &self.roaming {
            apply_roaming(&mut world, r);
        }
        if let Some(s) = &self.churn {
            apply_churn(&mut world, s);
        }
        world
    }

    /// Convenience: build and run for the base's configured day.
    pub fn run(&self, seed: u64) -> SimOutput {
        let day = self.base.day_us;
        self.build(seed).run(day)
    }

    // ---- the named sweep matrix -----------------------------------------

    /// Clients walk between three APs mid-session, silently abandoning
    /// associations (stale AP state, cross-channel retries, re-scans).
    pub fn roaming() -> Self {
        let base = ScenarioConfig {
            day_us: 12_000_000,
            n_aps: 3,
            n_clients: 4,
            ..sweep_base()
        };
        ScenarioSpec {
            roaming: Some(Roaming {
                roamers: 3,
                dwell_us: 2_200_000,
            }),
            ..Self::plain("roaming", base)
        }
    }

    /// Two hidden pairs hammering one AP with bulk transfers: collisions
    /// the transmitters cannot carrier-sense away.
    pub fn hidden_terminal() -> Self {
        let base = ScenarioConfig {
            day_us: 10_000_000,
            n_aps: 1,
            n_clients: 4,
            ..sweep_base()
        };
        ScenarioSpec {
            hidden: Some(HiddenTerminals { pairs: 2 }),
            ..Self::plain("hidden_terminal", base)
        }
    }

    /// Three APs (and their clients) jammed onto channel 6, then spread
    /// back over 1/6/11 by a staggered mid-run re-allocation.
    pub fn cochannel_realloc() -> Self {
        let base = ScenarioConfig {
            day_us: 12_000_000,
            n_aps: 3,
            n_clients: 3,
            ..sweep_base()
        };
        ScenarioSpec {
            cochannel: Some(CoChannel {
                channel: 6,
                realloc_at_us: Some(6_000_000),
            }),
            ..Self::plain("cochannel_realloc", base)
        }
    }

    /// Half the clients are b-only with a short protection timeout and
    /// mid-run churn: protection mode flaps on and off as legacy clients
    /// come and go.
    pub fn protection_mix() -> Self {
        let base = ScenarioConfig {
            day_us: 12_000_000,
            n_aps: 2,
            n_clients: 6,
            b_only_fraction: 0.5,
            protection_timeout_us: 1_500_000,
            protection_check_us: 400_000,
            ..sweep_base()
        };
        ScenarioSpec {
            churn: Some(SessionChurn {
                off_at_us: 4_500_000,
                on_at_us: 7_000_000,
            }),
            ..Self::plain("protection_mix", base)
        }
    }

    /// Bulk uploads competing with interactive ssh under two APs — the
    /// QoS/fairness mix the 802.11b MAC analyses measure.
    pub fn qos_mix() -> Self {
        let base = ScenarioConfig {
            day_us: 10_000_000,
            n_aps: 2,
            n_clients: 6,
            office_broadcasters: 2,
            ..sweep_base()
        };
        ScenarioSpec {
            qos: Some(QosMix {
                bulk: 3,
                interactive: 2,
            }),
            ..Self::plain("qos_mix", base)
        }
    }

    /// Error-rate stress: three microwaves with short duty cycles, lossy
    /// Internet paths, and a b-only minority forcing protection overhead.
    pub fn error_stress() -> Self {
        let base = ScenarioConfig {
            day_us: 10_000_000,
            n_aps: 2,
            n_clients: 4,
            b_only_fraction: 0.25,
            internet_hosts: 2,
            internet_loss: 0.08,
            microwaves: 3,
            microwave_gap_us: 2_000_000,
            microwave_cook_us: 1_600_000,
            ..sweep_base()
        };
        Self::plain("error_stress", base)
    }

    /// The canonical sweep matrix, in golden-file order.
    pub fn sweep_matrix() -> Vec<ScenarioSpec> {
        vec![
            Self::roaming(),
            Self::hidden_terminal(),
            Self::cochannel_realloc(),
            Self::protection_mix(),
            Self::qos_mix(),
            Self::error_stress(),
        ]
    }

    /// Looks a matrix scenario up by name.
    pub fn by_name(name: &str) -> Option<ScenarioSpec> {
        Self::sweep_matrix().into_iter().find(|s| s.name == name)
    }
}

/// The shared base for sweep scenarios: tiny-scale (CI-budget sims of
/// 10–12 s), always-on clients, no truth recording.
fn sweep_base() -> ScenarioConfig {
    ScenarioConfig {
        n_pods: 2,
        truth: TruthConfig::Off,
        ..ScenarioConfig::tiny(0)
    }
}

fn first_client(world: &World) -> usize {
    world.cfg.n_aps + world.cfg.n_external_aps
}

fn client_sid(world: &World, k: usize) -> Option<StationId> {
    let idx = first_client(world) + k;
    (idx < world.stations.len()).then_some(StationId(idx as u16))
}

fn apply_qos(world: &mut World, q: &QosMix) {
    for k in 0..world.cfg.n_clients {
        let Some(sid) = client_sid(world, k) else {
            break;
        };
        let class = if k < q.bulk {
            WorkloadClass::Bulk { upload: k % 2 == 0 }
        } else if k < q.bulk + q.interactive {
            WorkloadClass::Interactive
        } else {
            WorkloadClass::Mixed
        };
        if let Some(cs) = world.stations[sid.index()].role.as_client_mut() {
            cs.workload = class;
        }
    }
}

fn apply_hidden(world: &mut World, h: &HiddenTerminals) {
    let n_aps = world.cfg.n_aps.max(1);
    for pair in 0..h.pairs {
        let (Some(c1), Some(c2)) = (client_sid(world, 2 * pair), client_sid(world, 2 * pair + 1))
        else {
            break;
        };
        let ap_entity = world.stations[pair % n_aps].entity;
        let (ap_pos, ap_chan) = {
            let e = world.medium.entity(ap_entity);
            (e.pos, e.channel)
        };
        let (width, floor) = {
            let b = world.medium.building();
            (b.width_m, b.floor_of(&ap_pos))
        };
        let e1 = world.stations[c1.index()].entity;
        let e2 = world.stations[c2.index()].entity;
        // Walk the pair outward along the corridor until they can no longer
        // carrier-sense each other but both still decode at the AP.
        // Shadowing is deterministic per (pair, seed), so so is the search.
        for sep in [16.0, 22.0, 28.0, 34.0, 42.0, 52.0, 64.0] {
            let place = |off: f64| {
                let b = world.medium.building();
                b.at(floor, (ap_pos.x + off).clamp(1.0, width - 1.0), ap_pos.y)
            };
            let (p1, p2) = (place(-sep / 2.0), place(sep / 2.0));
            world.move_station(c1, p1, Some(ap_chan));
            world.move_station(c2, p2, Some(ap_chan));
            let mutual = world
                .medium
                .rx_power_ddbm(e1, e2, ap_chan)
                .max(world.medium.rx_power_ddbm(e2, e1, ap_chan));
            let uplink = world
                .medium
                .rx_power_ddbm(e1, ap_entity, ap_chan)
                .min(world.medium.rx_power_ddbm(e2, ap_entity, ap_chan));
            if mutual < CS_PREAMBLE_DDBM && uplink >= CS_PREAMBLE_DDBM + 40 {
                break;
            }
        }
        // Saturate the pair so their transmissions actually overlap.
        for (k, sid) in [(0usize, c1), (1usize, c2)] {
            if let Some(cs) = world.stations[sid.index()].role.as_client_mut() {
                cs.workload = WorkloadClass::Bulk { upload: k == 0 };
            }
        }
    }
}

fn apply_cochannel(world: &mut World, c: &CoChannel) {
    let ch = Channel::of(c.channel);
    for i in 0..world.cfg.n_aps {
        world.retune_station(StationId(i as u16), ch);
    }
    for k in 0..world.cfg.n_clients {
        if let Some(sid) = client_sid(world, k) {
            world.retune_station(sid, ch);
        }
    }
    if let Some(at) = c.realloc_at_us {
        for i in 0..world.cfg.n_aps {
            world.queue.schedule(
                at + 11_000 * i as u64,
                EventKind::ChannelRealloc {
                    station: StationId(i as u16),
                    channel: Channel::ORTHOGONAL[i % 3].number(),
                },
            );
        }
    }
}

fn apply_roaming(world: &mut World, r: &Roaming) {
    for k in 0..r.roamers {
        let Some(sid) = client_sid(world, k) else {
            break;
        };
        let first = r.dwell_us / 2 + k as u64 * (r.dwell_us / 5 + 13_000);
        world.queue.schedule(
            first,
            EventKind::ClientRoam {
                station: sid,
                dwell_us: r.dwell_us,
            },
        );
    }
}

fn apply_churn(world: &mut World, s: &SessionChurn) {
    for k in 0..world.cfg.n_clients {
        let Some(sid) = client_sid(world, k) else {
            break;
        };
        world.queue.schedule(
            s.off_at_us + 40_000 * k as u64,
            EventKind::ClientLifecycle {
                station: sid,
                activate: false,
            },
        );
        world.queue.schedule(
            s.on_at_us + 40_000 * k as u64,
            EventKind::ClientLifecycle {
                station: sid,
                activate: true,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_six_distinct_named_scenarios() {
        let m = ScenarioSpec::sweep_matrix();
        assert_eq!(m.len(), 6);
        let names: std::collections::HashSet<_> = m.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), 6);
        for s in &m {
            assert_eq!(ScenarioSpec::by_name(&s.name), Some(s.clone()));
        }
        assert!(ScenarioSpec::by_name("nope").is_none());
    }

    #[test]
    fn build_is_deterministic() {
        for spec in ScenarioSpec::sweep_matrix() {
            let w1 = spec.build(77);
            let w2 = spec.build(77);
            assert_eq!(w1.stations.len(), w2.stations.len(), "{}", spec.name);
            for (a, b) in w1.stations.iter().zip(w2.stations.iter()) {
                assert_eq!(a.mac.addr, b.mac.addr);
                let (ea, eb) = (w1.medium.entity(a.entity), w2.medium.entity(b.entity));
                assert_eq!(ea.pos, eb.pos, "{}", spec.name);
                assert_eq!(ea.channel, eb.channel, "{}", spec.name);
            }
            assert_eq!(w1.queue.len(), w2.queue.len(), "{}", spec.name);
        }
    }

    #[test]
    fn hidden_pairs_are_hidden_but_decodable() {
        let w = ScenarioSpec::hidden_terminal().build(11);
        let ap_entity = w.stations[0].entity;
        let ch = w.medium.entity(ap_entity).channel;
        let first = w.cfg.n_aps + w.cfg.n_external_aps;
        for pair in 0..2 {
            let e1 = w.stations[first + 2 * pair].entity;
            let e2 = w.stations[first + 2 * pair + 1].entity;
            let mutual = w
                .medium
                .rx_power_ddbm(e1, e2, ch)
                .max(w.medium.rx_power_ddbm(e2, e1, ch));
            assert!(
                mutual < CS_PREAMBLE_DDBM,
                "pair {pair} can carrier-sense: {mutual}"
            );
            let uplink = w
                .medium
                .rx_power_ddbm(e1, ap_entity, ch)
                .min(w.medium.rx_power_ddbm(e2, ap_entity, ch));
            assert!(uplink >= CS_PREAMBLE_DDBM, "pair {pair} too far: {uplink}");
        }
    }

    #[test]
    fn cochannel_start_shares_one_channel() {
        let w = ScenarioSpec::cochannel_realloc().build(3);
        for i in 0..w.cfg.n_aps {
            assert_eq!(w.medium.entity(w.stations[i].entity).channel.number(), 6);
        }
    }

    #[test]
    fn qos_mix_assigns_classes() {
        let w = ScenarioSpec::qos_mix().build(3);
        let first = w.cfg.n_aps + w.cfg.n_external_aps;
        let class = |k: usize| w.stations[first + k].role.as_client().unwrap().workload;
        assert!(matches!(class(0), WorkloadClass::Bulk { .. }));
        assert!(matches!(class(3), WorkloadClass::Interactive));
        assert_eq!(class(5), WorkloadClass::Mixed);
    }

    #[test]
    fn every_matrix_scenario_runs_and_captures() {
        for spec in ScenarioSpec::sweep_matrix() {
            let out = spec.run(20060124);
            let events: usize = out.traces.iter().map(|t| t.len()).sum();
            assert!(
                events > 500,
                "{} produced only {events} capture events",
                spec.name
            );
        }
    }
}
