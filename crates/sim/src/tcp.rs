//! Simulated TCP endpoints.
//!
//! Both ends of every flow are simulated (client on a wireless station,
//! server on a wired host), producing protocol-correct segment sequences:
//! three-way handshake, slow start, congestion avoidance, duplicate-ACK
//! fast retransmit, RTO with exponential backoff and go-back-N resend, FIN
//! teardown. That is exactly the surface Jigsaw's transport reconstruction
//! consumes (paper §5.2): sequence/ACK numbers whose "covering" proves
//! link-layer delivery.
//!
//! Simplifications (not observable by the paper's analyses): no SACK, no
//! delayed ACKs, no window scaling, fixed 64 KB receive window. Out-of-order
//! data is held in a reassembly interval set (content is irrelevant, only
//! sequence ranges matter), so a single loss costs a single retransmission.

use jigsaw_ieee80211::Micros;
use jigsaw_packet::TcpSegment;

/// Wrapping sequence-space comparison: is `a < b`?
pub fn seq_lt(a: u32, b: u32) -> bool {
    (b.wrapping_sub(a) as i32) > 0
}

/// Wrapping sequence-space comparison: is `a <= b`?
pub fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// Endpoint connection state (simplified TCP state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Initial (passive side waits here for a SYN).
    Closed,
    /// Active opener sent its SYN.
    SynSent,
    /// Passive side answered with SYN-ACK.
    SynRcvd,
    /// Data may flow.
    Established,
    /// We sent our FIN, awaiting its ACK (and possibly the peer's FIN).
    Closing,
    /// Both FINs exchanged and acknowledged.
    Done,
}

/// Minimum retransmission timeout. RFC 2988 (the era's standard) keeps a
/// conservative 1 s floor — important here because WLAN queueing delay
/// under contention routinely exceeds 200 ms and would otherwise trigger
/// spurious RTOs.
pub const RTO_MIN_US: u64 = 1_000_000;
/// Maximum retransmission timeout.
pub const RTO_MAX_US: u64 = 60_000_000;
/// Initial RTO before any RTT sample.
pub const RTO_INIT_US: u64 = 1_000_000;
/// Congestion window cap (bytes) — models the 64 KB receive window.
pub const CWND_MAX: u32 = 64 * 1024;

/// What an endpoint wants the world to do after an input.
#[derive(Debug, Default)]
pub struct TcpOutput {
    /// Segments to transmit, in order.
    pub segments: Vec<TcpSegment>,
    /// If set, (re)arm the retransmission timer for this absolute deadline.
    /// `None` leaves the timer as is; the world checks `timer_gen`.
    pub arm_timer: Option<Micros>,
}

/// One endpoint of a TCP connection.
#[derive(Debug)]
pub struct TcpEndpoint {
    /// Our port.
    pub port: u16,
    /// Peer's port.
    pub peer_port: u16,
    /// State.
    pub state: TcpState,
    /// Initial send sequence number.
    pub iss: u32,
    /// Highest sequence sent + 1.
    pub snd_nxt: u32,
    /// Oldest unacknowledged sequence.
    pub snd_una: u32,
    /// Congestion window, bytes.
    pub cwnd: u32,
    /// Slow-start threshold, bytes.
    pub ssthresh: u32,
    /// Maximum segment size.
    pub mss: u16,
    /// Next sequence expected from the peer.
    pub rcv_nxt: u32,
    /// Application bytes still to be sent (not yet packetized).
    pub app_remaining: u64,
    /// Close once `app_remaining` drains and all data is acked.
    pub close_when_done: bool,
    /// Sequence of our FIN, once sent.
    pub fin_seq: Option<u32>,
    /// Peer's FIN has been received.
    pub peer_fin_seen: bool,
    /// Sequence consumed by the peer's FIN (it may arrive out of order).
    pub remote_fin_end: Option<u32>,
    /// Reassembly buffer: out-of-order `[start, end)` sequence intervals.
    pub ooo: Vec<(u32, u32)>,
    /// Consecutive duplicate ACKs.
    pub dupacks: u8,
    /// Smoothed RTT (µs).
    pub srtt_us: Option<f64>,
    /// RTT variance (µs).
    pub rttvar_us: f64,
    /// Current RTO (µs).
    pub rto_us: u64,
    /// Outstanding RTT probe: (sequence that must be covered, send time).
    pub rtt_probe: Option<(u32, Micros)>,
    /// Timer generation (world checks on fire).
    pub timer_gen: u32,
    /// Statistics: segments retransmitted by RTO.
    pub rto_retransmits: u64,
    /// Statistics: segments retransmitted by fast retransmit.
    pub fast_retransmits: u64,
}

impl TcpEndpoint {
    /// A fresh endpoint.
    pub fn new(port: u16, peer_port: u16, iss: u32, mss: u16) -> Self {
        TcpEndpoint {
            port,
            peer_port,
            state: TcpState::Closed,
            iss,
            snd_nxt: iss,
            snd_una: iss,
            cwnd: u32::from(mss) * 2,
            ssthresh: CWND_MAX,
            mss,
            rcv_nxt: 0,
            app_remaining: 0,
            close_when_done: false,
            fin_seq: None,
            peer_fin_seen: false,
            remote_fin_end: None,
            ooo: Vec::new(),
            dupacks: 0,
            srtt_us: None,
            rttvar_us: 0.0,
            rto_us: RTO_INIT_US,
            rtt_probe: None,
            timer_gen: 0,
            rto_retransmits: 0,
            fast_retransmits: 0,
        }
    }

    /// Bytes in flight.
    pub fn inflight(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }

    /// True when this endpoint has nothing more to do.
    pub fn is_done(&self) -> bool {
        self.state == TcpState::Done
    }

    fn bump_timer(&mut self) -> u32 {
        self.timer_gen = self.timer_gen.wrapping_add(1);
        self.timer_gen
    }

    /// Active open: emit the SYN.
    pub fn connect(&mut self, now: Micros) -> TcpOutput {
        debug_assert_eq!(self.state, TcpState::Closed);
        self.state = TcpState::SynSent;
        self.snd_nxt = self.iss.wrapping_add(1);
        self.rtt_probe = Some((self.snd_nxt, now));
        self.bump_timer();
        TcpOutput {
            segments: vec![TcpSegment::syn(
                self.port,
                self.peer_port,
                self.iss,
                self.mss,
            )],
            arm_timer: Some(now + self.rto_us),
        }
    }

    /// Queues application data for transmission and tries to send.
    pub fn app_write(&mut self, bytes: u64, now: Micros) -> TcpOutput {
        self.app_remaining += bytes;
        self.try_send(now)
    }

    /// Marks that the connection should close after pending data drains.
    pub fn shutdown(&mut self, now: Micros) -> TcpOutput {
        self.close_when_done = true;
        self.try_send(now)
    }

    /// Emits as much data as cwnd allows (plus SYN-ACK/FIN when due).
    pub fn try_send(&mut self, now: Micros) -> TcpOutput {
        let mut out = TcpOutput::default();
        if self.state != TcpState::Established && self.state != TcpState::Closing {
            return out;
        }
        let mut sent_any = false;
        while self.app_remaining > 0 && self.inflight() + u32::from(self.mss) <= self.cwnd {
            let chunk = u64::from(self.mss).min(self.app_remaining) as u16;
            let seg =
                TcpSegment::data(self.port, self.peer_port, self.snd_nxt, self.rcv_nxt, chunk);
            self.snd_nxt = self.snd_nxt.wrapping_add(u32::from(chunk));
            self.app_remaining -= u64::from(chunk);
            if self.rtt_probe.is_none() {
                self.rtt_probe = Some((self.snd_nxt, now));
            }
            out.segments.push(seg);
            sent_any = true;
        }
        // FIN once everything is packetized and we were asked to close.
        if self.close_when_done
            && self.app_remaining == 0
            && self.fin_seq.is_none()
            && self.state == TcpState::Established
        {
            let mut fin =
                TcpSegment::data(self.port, self.peer_port, self.snd_nxt, self.rcv_nxt, 0);
            fin.flags.fin = true;
            self.fin_seq = Some(self.snd_nxt);
            self.snd_nxt = self.snd_nxt.wrapping_add(1);
            self.state = TcpState::Closing;
            out.segments.push(fin);
            sent_any = true;
        }
        if sent_any {
            self.bump_timer();
            out.arm_timer = Some(now + self.rto_us);
        }
        out
    }

    /// The retransmission timer fired (world verified the generation).
    pub fn on_rto(&mut self, now: Micros) -> TcpOutput {
        let mut out = TcpOutput::default();
        if self.inflight() == 0 && self.state != TcpState::SynSent {
            return out;
        }
        // Classic Tahoe-style response: collapse to one MSS, back off RTO.
        let inflight = self.inflight();
        self.ssthresh = (inflight / 2).max(2 * u32::from(self.mss));
        self.cwnd = u32::from(self.mss);
        self.rto_us = (self.rto_us * 2).min(RTO_MAX_US);
        self.dupacks = 0;
        self.rtt_probe = None; // Karn's algorithm
        self.rto_retransmits += 1;
        match self.state {
            TcpState::SynSent => {
                out.segments.push(TcpSegment::syn(
                    self.port,
                    self.peer_port,
                    self.iss,
                    self.mss,
                ));
            }
            _ => {
                out.segments.push(self.retransmit_head());
            }
        }
        self.bump_timer();
        out.arm_timer = Some(now + self.rto_us);
        out
    }

    /// Builds the segment at `snd_una` for retransmission (go-back-N: the
    /// window beyond the head will be resent as later ACKs force it).
    fn retransmit_head(&mut self) -> TcpSegment {
        if Some(self.snd_una) == self.fin_seq {
            let mut fin =
                TcpSegment::data(self.port, self.peer_port, self.snd_una, self.rcv_nxt, 0);
            fin.flags.fin = true;
            return fin;
        }
        // Distance to FIN (or to snd_nxt) bounds the chunk.
        let limit = match self.fin_seq {
            Some(f) => f.wrapping_sub(self.snd_una),
            None => self.snd_nxt.wrapping_sub(self.snd_una),
        };
        let chunk = limit.min(u32::from(self.mss)) as u16;
        TcpSegment::data(self.port, self.peer_port, self.snd_una, self.rcv_nxt, chunk)
    }

    /// Processes an incoming segment. Returns segments to send in response.
    pub fn on_segment(&mut self, seg: &TcpSegment, now: Micros) -> TcpOutput {
        let mut out = TcpOutput::default();
        match self.state {
            TcpState::Closed => {
                // Passive open.
                if seg.flags.syn && !seg.flags.ack {
                    self.rcv_nxt = seg.seq.wrapping_add(1);
                    self.state = TcpState::SynRcvd;
                    if let Some(peer_mss) = seg.mss {
                        self.mss = self.mss.min(peer_mss);
                    }
                    self.snd_nxt = self.iss.wrapping_add(1);
                    out.segments
                        .push(TcpSegment::syn_ack(seg, self.iss, self.mss));
                    self.bump_timer();
                    out.arm_timer = Some(now + self.rto_us);
                }
                return out;
            }
            TcpState::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack == self.snd_nxt {
                    self.rcv_nxt = seg.seq.wrapping_add(1);
                    self.snd_una = seg.ack;
                    if let Some(peer_mss) = seg.mss {
                        self.mss = self.mss.min(peer_mss);
                    }
                    self.take_rtt_sample(seg.ack, now);
                    self.state = TcpState::Established;
                    out.segments.push(TcpSegment::pure_ack(
                        self.port,
                        self.peer_port,
                        self.snd_nxt,
                        self.rcv_nxt,
                    ));
                    let more = self.try_send(now);
                    out.segments.extend(more.segments);
                    out.arm_timer = more.arm_timer;
                }
                return out;
            }
            TcpState::SynRcvd => {
                if seg.flags.ack && seg.ack == self.snd_nxt {
                    self.snd_una = seg.ack;
                    self.take_rtt_sample(seg.ack, now);
                    self.state = TcpState::Established;
                    // Fall through to normal processing (the ACK may carry data).
                } else if seg.flags.syn && !seg.flags.ack {
                    // Duplicate SYN: repeat the SYN-ACK.
                    out.segments
                        .push(TcpSegment::syn_ack(seg, self.iss, self.mss));
                    return out;
                }
            }
            TcpState::Done => return out,
            _ => {}
        }

        // --- Established / Closing common path ---
        let mut must_ack = false;

        // ACK processing.
        if seg.flags.ack {
            let ack = seg.ack;
            if seq_lt(self.snd_una, ack) && seq_le(ack, self.snd_nxt) {
                // New data acknowledged.
                self.take_rtt_sample(ack, now);
                let acked = ack.wrapping_sub(self.snd_una);
                self.snd_una = ack;
                self.dupacks = 0;
                // cwnd growth: slow start below ssthresh, else CA.
                if self.cwnd < self.ssthresh {
                    self.cwnd = (self.cwnd + acked.min(u32::from(self.mss))).min(CWND_MAX);
                } else {
                    let add = (u32::from(self.mss) * u32::from(self.mss) / self.cwnd).max(1);
                    self.cwnd = (self.cwnd + add).min(CWND_MAX);
                }
                // FIN acknowledged?
                if let Some(f) = self.fin_seq {
                    if seq_lt(f, ack) && self.peer_fin_seen {
                        self.state = TcpState::Done;
                    }
                }
                if self.inflight() > 0 {
                    self.bump_timer();
                    out.arm_timer = Some(now + self.rto_us);
                }
            } else if ack == self.snd_una && self.inflight() > 0 && seg.payload_len == 0 {
                // Duplicate ACK.
                self.dupacks = self.dupacks.saturating_add(1);
                if self.dupacks == 3 {
                    // Fast retransmit.
                    self.ssthresh = (self.inflight() / 2).max(2 * u32::from(self.mss));
                    self.cwnd = self.ssthresh;
                    self.rtt_probe = None;
                    self.fast_retransmits += 1;
                    let seg = self.retransmit_head();
                    out.segments.push(seg);
                    self.bump_timer();
                    out.arm_timer = Some(now + self.rto_us);
                }
            }
        }

        // Data consumption with reassembly: in-order data advances rcv_nxt
        // directly; out-of-order ranges wait in the interval buffer.
        if seg.seq_space() > 0 {
            let (start, end) = (seg.seq, seg.seq_end());
            if seg.flags.fin {
                self.remote_fin_end = Some(end);
            }
            if seq_le(start, self.rcv_nxt) && seq_lt(self.rcv_nxt, end) {
                self.rcv_nxt = end;
            } else if seq_lt(self.rcv_nxt, start) {
                // Insert + merge the out-of-order interval.
                self.ooo.push((start, end));
                self.ooo.sort_by(|a, b| {
                    if a.0 == b.0 {
                        std::cmp::Ordering::Equal
                    } else if seq_lt(a.0, b.0) {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                });
                let mut merged: Vec<(u32, u32)> = Vec::with_capacity(self.ooo.len());
                for &(s0, e0) in self.ooo.iter() {
                    match merged.last_mut() {
                        Some((_, le)) if seq_le(s0, *le) => {
                            if seq_lt(*le, e0) {
                                *le = e0;
                            }
                        }
                        _ => merged.push((s0, e0)),
                    }
                }
                self.ooo = merged;
            }
            // Drain buffered intervals now contiguous with rcv_nxt.
            while let Some(&(s0, e0)) = self.ooo.first() {
                if seq_le(s0, self.rcv_nxt) {
                    if seq_lt(self.rcv_nxt, e0) {
                        self.rcv_nxt = e0;
                    }
                    self.ooo.remove(0);
                } else {
                    break;
                }
            }
            // The peer's FIN is consumed when rcv_nxt passes it.
            if let Some(fe) = self.remote_fin_end {
                if seq_le(fe, self.rcv_nxt) {
                    self.peer_fin_seen = true;
                    if let Some(f) = self.fin_seq {
                        if seq_lt(f, self.snd_una) {
                            self.state = TcpState::Done;
                        }
                    }
                }
            }
            // Always acknowledge received data (cumulative; dupACK on holes).
            must_ack = true;
        }

        if must_ack {
            out.segments.push(TcpSegment::pure_ack(
                self.port,
                self.peer_port,
                self.snd_nxt,
                self.rcv_nxt,
            ));
        }

        // Window may have opened.
        let more = self.try_send(now);
        out.segments.extend(more.segments);
        if more.arm_timer.is_some() {
            out.arm_timer = more.arm_timer;
        }
        out
    }

    fn take_rtt_sample(&mut self, ack: u32, now: Micros) {
        if let Some((probe_seq, sent_at)) = self.rtt_probe {
            if seq_le(probe_seq, ack) {
                let rtt = (now - sent_at) as f64;
                match self.srtt_us {
                    None => {
                        self.srtt_us = Some(rtt);
                        self.rttvar_us = rtt / 2.0;
                    }
                    Some(srtt) => {
                        let delta = (srtt - rtt).abs();
                        self.rttvar_us = 0.75 * self.rttvar_us + 0.25 * delta;
                        self.srtt_us = Some(0.875 * srtt + 0.125 * rtt);
                    }
                }
                let rto = self.srtt_us.unwrap() + 4.0 * self.rttvar_us;
                self.rto_us = (rto as u64).clamp(RTO_MIN_US, RTO_MAX_US);
                self.rtt_probe = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives two endpoints against each other over a perfect wire with the
    /// given one-way latency, returning total segments exchanged.
    fn run_perfect_wire(a_bytes: u64, b_bytes: u64) -> (TcpEndpoint, TcpEndpoint, usize) {
        let mut a = TcpEndpoint::new(5000, 80, 1_000, 1460);
        let mut b = TcpEndpoint::new(80, 5000, 9_000, 1460);
        let latency = 10_000u64;
        let mut now = 0u64;
        let mut wire: std::collections::VecDeque<(u64, bool, TcpSegment)> =
            std::collections::VecDeque::new();
        let mut total = 0usize;

        a.app_remaining = a_bytes;
        a.close_when_done = true;
        b.app_remaining = b_bytes;
        b.close_when_done = true;
        for s in a.connect(now).segments {
            wire.push_back((now + latency, false, s));
            total += 1;
        }
        let mut steps = 0;
        while let Some((t, to_a, seg)) = wire.pop_front() {
            steps += 1;
            assert!(steps < 10_000, "connection did not converge");
            now = t.max(now);
            let out = if to_a {
                a.on_segment(&seg, now)
            } else {
                b.on_segment(&seg, now)
            };
            for s in out.segments {
                wire.push_back((now + latency, !to_a, s));
                total += 1;
            }
        }
        (a, b, total)
    }

    #[test]
    fn handshake_and_teardown_only() {
        let (a, b, total) = run_perfect_wire(0, 0);
        assert_eq!(a.state, TcpState::Done);
        assert_eq!(b.state, TcpState::Done);
        // SYN, SYN-ACK, ACK, 2×(FIN + ACK) ≈ 7 segments, small slack.
        assert!((7..=10).contains(&total), "total {total}");
    }

    #[test]
    fn bulk_transfer_completes() {
        let (a, b, _) = run_perfect_wire(100_000, 0);
        assert_eq!(a.state, TcpState::Done);
        assert_eq!(b.state, TcpState::Done);
        assert_eq!(a.app_remaining, 0);
        // Receiver consumed everything: rcv_nxt advanced 100_000 + SYN + FIN.
        assert_eq!(b.rcv_nxt.wrapping_sub(1_000), 100_000 + 2);
    }

    #[test]
    fn bidirectional_transfer() {
        let (a, b, _) = run_perfect_wire(30_000, 50_000);
        assert_eq!(a.state, TcpState::Done);
        assert_eq!(b.state, TcpState::Done);
        assert_eq!(b.rcv_nxt.wrapping_sub(1_000), 30_000 + 2);
        assert_eq!(a.rcv_nxt.wrapping_sub(9_000), 50_000 + 2);
    }

    #[test]
    fn slow_start_grows_cwnd() {
        let (a, _, _) = run_perfect_wire(200_000, 0);
        assert!(a.cwnd > 2 * 1460, "cwnd {}", a.cwnd);
    }

    #[test]
    fn rtt_estimated() {
        let (a, _, _) = run_perfect_wire(10_000, 0);
        let srtt = a.srtt_us.expect("rtt sampled");
        assert!((srtt - 20_000.0).abs() < 5_000.0, "srtt {srtt}");
        assert_eq!(a.rto_us, RTO_MIN_US); // 20ms + var « 200ms floor
    }

    #[test]
    fn rto_retransmits_syn() {
        let mut a = TcpEndpoint::new(1, 2, 0, 1460);
        let o = a.connect(0);
        assert_eq!(o.segments.len(), 1);
        assert!(o.segments[0].flags.syn);
        let o2 = a.on_rto(RTO_INIT_US);
        assert_eq!(o2.segments.len(), 1);
        assert!(o2.segments[0].flags.syn);
        assert_eq!(a.rto_us, 2 * RTO_INIT_US);
        assert_eq!(a.rto_retransmits, 1);
    }

    #[test]
    fn dupacks_trigger_fast_retransmit() {
        let mut a = TcpEndpoint::new(1, 2, 1000, 1000);
        // Get established quickly by hand.
        a.state = TcpState::Established;
        a.snd_nxt = 1001;
        a.snd_una = 1001;
        a.rcv_nxt = 501;
        a.cwnd = 10_000;
        let out = a.app_write(5_000, 0);
        assert_eq!(out.segments.len(), 5);
        // Peer acks nothing new, three duplicate ACKs at snd_una.
        let dup = TcpSegment::pure_ack(2, 1, 501, 1001);
        assert!(a.on_segment(&dup, 100).segments.is_empty());
        assert!(a.on_segment(&dup, 200).segments.is_empty());
        let third = a.on_segment(&dup, 300);
        assert_eq!(third.segments.len(), 1, "fast retransmit fired");
        assert_eq!(third.segments[0].seq, 1001);
        assert_eq!(a.fast_retransmits, 1);
        assert!(a.cwnd < 10_000);
    }

    #[test]
    fn out_of_order_data_produces_dup_acks() {
        let mut b = TcpEndpoint::new(80, 5000, 0, 1000);
        b.state = TcpState::Established;
        b.rcv_nxt = 100;
        // In-order segment advances rcv_nxt and acks.
        let s1 = TcpSegment::data(5000, 80, 100, 1, 1000);
        let o1 = b.on_segment(&s1, 0);
        assert_eq!(b.rcv_nxt, 1100);
        assert_eq!(o1.segments.len(), 1);
        assert_eq!(o1.segments[0].ack, 1100);
        // Gap: segment at 2100 (missing 1100..2100) → dup ack at 1100,
        // with the out-of-order range buffered for reassembly.
        let s3 = TcpSegment::data(5000, 80, 2100, 1, 1000);
        let o3 = b.on_segment(&s3, 10);
        assert_eq!(b.rcv_nxt, 1100, "hole not skipped");
        assert_eq!(o3.segments[0].ack, 1100);
        assert_eq!(b.ooo, vec![(2100, 3100)]);
        // Filling the hole jumps rcv_nxt past the buffered range.
        let s2 = TcpSegment::data(5000, 80, 1100, 1, 1000);
        let o2 = b.on_segment(&s2, 20);
        assert_eq!(b.rcv_nxt, 3100, "reassembly failed");
        assert_eq!(o2.segments[0].ack, 3100);
        assert!(b.ooo.is_empty());
    }

    #[test]
    fn mss_negotiated_down() {
        let mut server = TcpEndpoint::new(80, 5000, 0, 1460);
        let syn = TcpSegment::syn(5000, 80, 7, 536);
        let out = server.on_segment(&syn, 0);
        assert_eq!(server.mss, 536);
        assert_eq!(out.segments.len(), 1);
        assert!(out.segments[0].flags.syn && out.segments[0].flags.ack);
    }
}
