//! Frame construction helpers: building the exact on-air frames stations
//! emit (beacons with ERP protection signalling, probes, association
//! handshakes, data frames with correct DS bits and Duration fields).

use jigsaw_ieee80211::fc::FcFlags;
use jigsaw_ieee80211::frame::{DataFrame, Frame, MgmtBody, MgmtHeader};
use jigsaw_ieee80211::ie::{erp, Ie};
use jigsaw_ieee80211::timing::{duration_data_ack, Preamble};
use jigsaw_ieee80211::{MacAddr, PhyRate, SeqNum};

/// The supported-rates IEs for a station: 802.11b-only or full b/g.
pub fn rate_ies(b_only: bool) -> Vec<Ie> {
    if b_only {
        // 1, 2, 5.5, 11 Mbps — basic-rate bits set on 1 and 2.
        vec![Ie::SupportedRates(vec![0x82, 0x84, 0x0b, 0x16])]
    } else {
        vec![
            Ie::SupportedRates(vec![0x82, 0x84, 0x0b, 0x16, 0x0c, 0x12, 0x18, 0x24]),
            Ie::ExtSupportedRates(vec![0x30, 0x48, 0x60, 0x6c]),
        ]
    }
}

/// Builds a beacon frame body for an AP.
pub fn beacon(
    ap: MacAddr,
    ssid: &[u8],
    channel: u8,
    protection_on: bool,
    tsf: u64,
    seq: SeqNum,
) -> Frame {
    let mut ies = vec![Ie::Ssid(ssid.to_vec())];
    ies.extend(rate_ies(false));
    ies.push(Ie::DsParam(channel));
    let mut erp_flags = 0u8;
    if protection_on {
        erp_flags |= erp::USE_PROTECTION | erp::NON_ERP_PRESENT;
    }
    ies.push(Ie::ErpInfo(erp_flags));
    Frame::Mgmt {
        header: MgmtHeader::new(MacAddr::BROADCAST, ap, ap, seq),
        body: MgmtBody::Beacon {
            timestamp: tsf,
            interval_tu: 100,
            cap: 0x0401,
            ies,
        },
    }
}

/// Builds a broadcast probe request from a client.
pub fn probe_req(client: MacAddr, b_only: bool, seq: SeqNum) -> Frame {
    let mut ies = vec![Ie::Ssid(Vec::new())]; // wildcard SSID
    ies.extend(rate_ies(b_only));
    Frame::Mgmt {
        header: MgmtHeader::new(MacAddr::BROADCAST, client, MacAddr::BROADCAST, seq),
        body: MgmtBody::ProbeReq { ies },
    }
}

/// Builds a probe response from an AP to a scanning client.
pub fn probe_resp(
    ap: MacAddr,
    client: MacAddr,
    ssid: &[u8],
    channel: u8,
    protection_on: bool,
    tsf: u64,
    seq: SeqNum,
) -> MgmtBody {
    let mut ies = vec![Ie::Ssid(ssid.to_vec())];
    ies.extend(rate_ies(false));
    ies.push(Ie::DsParam(channel));
    let mut erp_flags = 0u8;
    if protection_on {
        erp_flags |= erp::USE_PROTECTION | erp::NON_ERP_PRESENT;
    }
    ies.push(Ie::ErpInfo(erp_flags));
    let _ = (ap, client, seq);
    MgmtBody::ProbeResp {
        timestamp: tsf,
        interval_tu: 100,
        cap: 0x0401,
        ies,
    }
}

/// Builds an authentication frame (open system).
pub fn auth(step: u16) -> MgmtBody {
    MgmtBody::Auth {
        algorithm: 0,
        auth_seq: step,
        status: 0,
    }
}

/// Builds an association request body.
pub fn assoc_req(b_only: bool) -> MgmtBody {
    MgmtBody::AssocReq {
        cap: 0x0401,
        listen_interval: 10,
        ies: rate_ies(b_only),
    }
}

/// Builds an association response body.
pub fn assoc_resp(aid: u16) -> MgmtBody {
    MgmtBody::AssocResp {
        cap: 0x0401,
        status: 0,
        aid: aid | 0xc000,
        ies: rate_ies(false),
    }
}

/// Assembles a unicast/broadcast data frame with correct DS bits, duration
/// and retry flag.
#[allow(clippy::too_many_arguments)]
pub fn data_frame(
    dst: MacAddr,
    transmitter: MacAddr,
    addr3: MacAddr,
    to_ds: bool,
    from_ds: bool,
    seq: SeqNum,
    retry: bool,
    rate: PhyRate,
    preamble: Preamble,
    body: Vec<u8>,
) -> Frame {
    let duration = if dst.is_unicast() {
        duration_data_ack(rate, preamble)
    } else {
        0
    };
    Frame::Data(DataFrame {
        duration,
        addr1: dst,
        addr2: transmitter,
        addr3,
        seq,
        frag: 0,
        flags: FcFlags {
            to_ds,
            from_ds,
            retry,
            ..Default::default()
        },
        null: false,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_ieee80211::ie;
    use jigsaw_ieee80211::wire::{parse_frame, serialize_frame};

    #[test]
    fn beacon_roundtrips_and_signals_protection() {
        let ap = MacAddr::local(0, 1);
        let f = beacon(ap, b"cse", 6, true, 123456, SeqNum::new(7));
        let bytes = serialize_frame(&f);
        let back = parse_frame(&bytes).unwrap();
        if let Frame::Mgmt {
            body: MgmtBody::Beacon { ies, .. },
            ..
        } = &back
        {
            assert_eq!(ie::find_channel(ies), Some(6));
            let flags = ie::find_erp(ies).unwrap();
            assert!(flags & erp::USE_PROTECTION != 0);
        } else {
            panic!("not a beacon: {back:?}");
        }
        // Without protection.
        let f2 = beacon(ap, b"cse", 6, false, 1, SeqNum::new(8));
        if let Frame::Mgmt {
            body: MgmtBody::Beacon { ies, .. },
            ..
        } = &f2
        {
            assert_eq!(ie::find_erp(ies), Some(0));
        }
    }

    #[test]
    fn rate_ies_identify_capability() {
        assert!(!ie::rates_include_ofdm(&rate_ies(true)));
        assert!(ie::rates_include_ofdm(&rate_ies(false)));
    }

    #[test]
    fn data_frame_duration_set_for_unicast_only() {
        let f = data_frame(
            MacAddr::local(1, 1),
            MacAddr::local(2, 2),
            MacAddr::local(3, 3),
            true,
            false,
            SeqNum::new(0),
            false,
            PhyRate::R11,
            Preamble::Long,
            vec![0; 100],
        );
        assert!(f.duration() > 0);
        let b = data_frame(
            MacAddr::BROADCAST,
            MacAddr::local(2, 2),
            MacAddr::local(3, 3),
            false,
            true,
            SeqNum::new(0),
            false,
            PhyRate::R1,
            Preamble::Long,
            vec![0; 100],
        );
        assert_eq!(b.duration(), 0);
    }

    #[test]
    fn probe_req_is_sync_ineligible() {
        // Probe requests must not serve as sync references (paper notes
        // some stations zero their probe sequence numbers).
        let f = probe_req(MacAddr::local(3, 9), false, SeqNum::new(0));
        assert!(!f.is_sync_reference());
    }

    #[test]
    fn assoc_handshake_bodies() {
        let req = assoc_req(true);
        if let MgmtBody::AssocReq { ies, .. } = &req {
            assert!(!ie::rates_include_ofdm(ies));
        } else {
            panic!();
        }
        let resp = assoc_resp(5);
        if let MgmtBody::AssocResp { aid, status, .. } = resp {
            assert_eq!(aid & 0x3fff, 5);
            assert_eq!(status, 0);
        } else {
            panic!();
        }
    }
}
