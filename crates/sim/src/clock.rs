//! Per-monitor clock models.
//!
//! Each monitor timestamps PHY events with a free-running 1 µs counter (the
//! Atheros TSF). Jigsaw's whole synchronization problem (paper §4) exists
//! because these clocks have arbitrary offsets, part-per-million *skew*, and
//! slowly changing skew (*drift*). The model here:
//!
//! ```text
//! local(t) = offset + t + skew(t)·t ,  skew(t) = skew₀ + random-walk(t)
//! ```
//!
//! realized incrementally so the walk is causal, then quantized to 1 µs.
//! A monitor also records an NTP wall-clock anchor with a few milliseconds
//! of error — exactly what footnote 4 of the paper describes ("each monitor
//! maintains their system clock within milliseconds using NTP... this is the
//! only point at which the system clock time is ever used").

use jigsaw_ieee80211::Micros;

/// A free-running monitor clock with offset, skew and drift.
#[derive(Debug, Clone)]
pub struct ClockModel {
    /// Constant offset, µs (the TSF started counting long before the trace).
    pub offset_us: u64,
    /// Initial skew in parts-per-million.
    pub skew_ppm: f64,
    /// Random-walk step applied to skew each [`ClockModel::DRIFT_STEP_US`],
    /// ppm (pre-drawn sequence keeps the model deterministic and pure).
    drift_steps_ppm: Vec<f64>,
    /// NTP error of this monitor's system clock, µs (±).
    pub ntp_error_us: i64,
}

impl ClockModel {
    /// Interval at which the drift random walk advances.
    pub const DRIFT_STEP_US: Micros = 1_000_000;

    /// Builds a clock. `drift_steps_ppm[k]` perturbs the skew during second
    /// `k` of true time; an empty vector means a perfectly stable oscillator.
    pub fn new(
        offset_us: u64,
        skew_ppm: f64,
        drift_steps_ppm: Vec<f64>,
        ntp_error_us: i64,
    ) -> Self {
        ClockModel {
            offset_us,
            skew_ppm,
            drift_steps_ppm,
            ntp_error_us,
        }
    }

    /// An ideal clock (tests).
    pub fn ideal() -> Self {
        ClockModel::new(0, 0.0, Vec::new(), 0)
    }

    /// The instantaneous skew (ppm) in effect at true time `t`.
    pub fn skew_at(&self, t: Micros) -> f64 {
        let steps = (t / Self::DRIFT_STEP_US) as usize;
        let walked: f64 = self.drift_steps_ppm.iter().take(steps).sum();
        self.skew_ppm + walked
    }

    /// Maps true time to this clock's local time, quantized to 1 µs.
    ///
    /// Integrates the skew over each drift interval so that local time is
    /// continuous and strictly increasing for |skew| < 10⁶ ppm.
    pub fn local(&self, t: Micros) -> Micros {
        let mut advance = 0.0f64; // accumulated (local - true) beyond offset
        let mut done: Micros = 0;
        let mut step = 0usize;
        while done < t {
            let seg_end = ((done / Self::DRIFT_STEP_US) + 1) * Self::DRIFT_STEP_US;
            let seg = seg_end.min(t) - done;
            let skew = self.skew_ppm + self.drift_steps_ppm.iter().take(step).sum::<f64>();
            advance += seg as f64 * skew * 1e-6;
            done += seg;
            step += 1;
        }
        let local = self.offset_us as f64 + t as f64 + advance;
        local.round().max(0.0) as Micros
    }

    /// The wall-clock (NTP) time this monitor believes corresponds to true
    /// time `t` — true time plus its NTP error.
    pub fn wall(&self, t: Micros) -> Micros {
        let w = t as i64 + self.ntp_error_us;
        w.max(0) as Micros
    }
}

/// Cached incremental converter for hot-path timestamping: O(1) per call for
/// monotone queries (the simulator always asks in non-decreasing `t`).
#[derive(Debug, Clone)]
pub struct ClockCursor {
    model: ClockModel,
    seg_start: Micros,
    advance_at_seg_start: f64,
    skew_now: f64,
    step: usize,
}

impl ClockCursor {
    /// Wraps a model.
    pub fn new(model: ClockModel) -> Self {
        let skew_now = model.skew_ppm;
        ClockCursor {
            model,
            seg_start: 0,
            advance_at_seg_start: 0.0,
            skew_now,
            step: 0,
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &ClockModel {
        &self.model
    }

    /// Local time for true time `t`; `t` may go backwards slightly (within
    /// the current drift segment) but is expected to be mostly monotone.
    pub fn local(&mut self, t: Micros) -> Micros {
        if t < self.seg_start {
            // Rare non-monotone query: fall back to the pure computation.
            return self.model.local(t);
        }
        // Advance whole segments.
        loop {
            let seg_end =
                ((self.seg_start / ClockModel::DRIFT_STEP_US) + 1) * ClockModel::DRIFT_STEP_US;
            if t < seg_end {
                break;
            }
            self.advance_at_seg_start += (seg_end - self.seg_start) as f64 * self.skew_now * 1e-6;
            self.seg_start = seg_end;
            self.skew_now = self.model.skew_ppm
                + self
                    .model
                    .drift_steps_ppm
                    .iter()
                    .take(self.step + 1)
                    .sum::<f64>();
            self.step += 1;
        }
        let advance =
            self.advance_at_seg_start + (t - self.seg_start) as f64 * self.skew_now * 1e-6;
        let local = self.model.offset_us as f64 + t as f64 + advance;
        local.round().max(0.0) as Micros
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_clock_is_identity() {
        let c = ClockModel::ideal();
        for t in [0u64, 1, 999_999, 12_345_678] {
            assert_eq!(c.local(t), t);
        }
    }

    #[test]
    fn offset_applied() {
        let c = ClockModel::new(5_000_000, 0.0, vec![], 0);
        assert_eq!(c.local(0), 5_000_000);
        assert_eq!(c.local(100), 5_000_100);
    }

    #[test]
    fn skew_accumulates() {
        // +100 ppm: after 1 s of true time, local has gained 100 µs.
        let c = ClockModel::new(0, 100.0, vec![], 0);
        assert_eq!(c.local(1_000_000), 1_000_100);
        assert_eq!(c.local(10_000_000), 10_001_000);
    }

    #[test]
    fn negative_skew() {
        let c = ClockModel::new(1_000_000, -50.0, vec![], 0);
        assert_eq!(c.local(1_000_000), 1_000_000 + 1_000_000 - 50);
    }

    #[test]
    fn drift_changes_rate() {
        // Skew 0 during second 0, +10 ppm during second 1.
        let c = ClockModel::new(0, 0.0, vec![10.0], 0);
        assert_eq!(c.local(1_000_000), 1_000_000);
        assert_eq!(c.local(2_000_000), 2_000_010);
        assert_eq!(c.skew_at(500_000), 0.0);
        assert_eq!(c.skew_at(1_500_000), 10.0);
    }

    #[test]
    fn monotonicity() {
        let steps: Vec<f64> = (0..60)
            .map(|i| if i % 2 == 0 { 0.3 } else { -0.25 })
            .collect();
        let c = ClockModel::new(77, 25.0, steps, 0);
        let mut last = 0;
        for t in (0..60_000_000u64).step_by(10_007) {
            let l = c.local(t);
            assert!(l >= last, "clock ran backwards at t={t}");
            last = l;
        }
    }

    #[test]
    fn cursor_matches_model() {
        let steps: Vec<f64> = (0..30)
            .map(|i| ((i * 7919) % 11) as f64 * 0.01 - 0.05)
            .collect();
        let m = ClockModel::new(123_456, -12.5, steps, 0);
        let mut cur = ClockCursor::new(m.clone());
        for t in (0..30_000_000u64).step_by(99_991) {
            assert_eq!(cur.local(t), m.local(t), "divergence at t={t}");
        }
        // Non-monotone query falls back correctly.
        assert_eq!(cur.local(5), m.local(5));
    }

    #[test]
    fn wall_clock_error() {
        let c = ClockModel::new(0, 0.0, vec![], -3_000);
        assert_eq!(c.wall(10_000), 7_000);
        let c2 = ClockModel::new(0, 0.0, vec![], 3_000);
        assert_eq!(c2.wall(10_000), 13_000);
    }
}
