//! Radio propagation and the frame-error model.
//!
//! Indoor log-distance path loss with floor attenuation and per-link
//! lognormal shadowing; SINR computed against the noise floor plus the sum
//! of co-/adjacent-channel interference; frame error probability derived
//! from the SINR margin over the rate's threshold, exponential in frame
//! length (so ACKs survive conditions that kill 1500-byte data frames —
//! the asymmetry Jigsaw's inference heuristics rely on, paper §5.1).
//!
//! All signal arithmetic is in deci-dB (i32, dB × 10) to keep the hot path
//! in integer math; conversions to linear mW happen only when summing
//! interference powers.

use crate::geom::{Building, Point3};
use jigsaw_ieee80211::PhyRate;

/// Thermal noise floor for a 20 MHz channel plus typical receiver noise
/// figure: ≈ −95 dBm (deci-dB).
pub const NOISE_FLOOR_DDBM: i32 = -950;

/// Carrier-sense threshold for a decodable (same-family) preamble.
pub const CS_PREAMBLE_DDBM: i32 = -820;

/// Energy-detect threshold — all a legacy 802.11b radio has against OFDM.
pub const CS_ENERGY_DDBM: i32 = -620;

/// Weakest signal a monitor records as *any* kind of PHY event.
/// DSSS preamble correlation has ~10 dB of processing gain, so detection
/// works below the thermal floor — this is where the paper's huge PHY-error
/// population ("transmissions observed by distant monitors just beyond
/// reception range", §7.1) comes from. Preamble decode needs SINR around
/// 0 dB (≈ −95 dBm); everything between there and this floor is logged as
/// a PHY error, giving detection a ~12 dB deeper reach than decode.
pub const CAPTURE_FLOOR_DDBM: i32 = -1070;

/// Links weaker than this are dropped from the precomputed audibility
/// lists: far enough below [`CAPTURE_FLOOR_DDBM`] that any link a maximum
/// upward fade (±18 dB clamp in [`fading_ddb`]) could lift over the floor
/// stays listed.
pub const AUDIBLE_CUTOFF_DDBM: i32 = -1250;

/// Transmit power used by APs and clients (15 dBm) in deci-dBm.
pub const TX_POWER_DDBM: i32 = 150;

/// Antenna gain of the pods' rubber-duck antennas (2.5 dBi), deci-dB.
pub const MONITOR_ANT_GAIN_DDB: i32 = 25;

/// Propagation model parameters.
#[derive(Debug, Clone)]
pub struct PropModel {
    /// Path loss at 1 m, deci-dB (≈ 40 dB at 2.4 GHz).
    pub pl0_ddb: i32,
    /// Path-loss exponent × 10 (indoor NLOS ≈ 3.3).
    pub exponent_x10: i32,
    /// Attenuation per floor slab crossed, deci-dB (≈ 14 dB).
    pub floor_loss_ddb: i32,
    /// Lognormal shadowing σ, deci-dB (≈ 6 dB).
    pub shadow_sigma_ddb: i32,
    /// Excess attenuation per horizontal meter beyond 5 m, deci-dB —
    /// approximates interior walls (attenuation-factor model). Keeps 1 Mbps
    /// beacons audible ~25–30 m, matching the paper's ≈3 receptions per
    /// valid frame.
    pub excess_ddb_per_m: i32,
}

impl Default for PropModel {
    fn default() -> Self {
        PropModel {
            pl0_ddb: 400,
            exponent_x10: 33,
            floor_loss_ddb: 250,
            shadow_sigma_ddb: 60,
            excess_ddb_per_m: 26,
        }
    }
}

impl PropModel {
    /// Deterministic per-link shadowing in deci-dB: a hash of the unordered
    /// pair of endpoint ids drives a pseudo-normal draw, so the link budget
    /// is stable over a run (slow fading) and symmetric.
    pub fn shadowing_ddb(&self, id_a: u32, id_b: u32, seed: u64) -> i32 {
        let (lo, hi) = if id_a < id_b {
            (id_a, id_b)
        } else {
            (id_b, id_a)
        };
        let mut h = seed ^ 0x9e3779b97f4a7c15;
        for v in [u64::from(lo), u64::from(hi)] {
            h ^= v.wrapping_mul(0xff51afd7ed558ccd);
            h = h.rotate_left(31).wrapping_mul(0xc4ceb9fe1a85ec53);
        }
        // Sum of 4 uniform nibbles ≈ normal; scale to σ.
        let mut acc: i64 = 0;
        for k in 0..4 {
            acc += ((h >> (k * 16)) & 0xffff) as i64 - 32768;
        }
        // acc ∈ [-131072, 131072], σ_acc ≈ 2·16384·…; empirically acc/32768
        // has σ ≈ 1.15 — close enough for a shadowing term.
        ((acc as f64 / 37_000.0) * f64::from(self.shadow_sigma_ddb)) as i32
    }

    /// Path loss between two points, deci-dB, *excluding* shadowing.
    pub fn path_loss_ddb(&self, building: &Building, a: &Point3, b: &Point3) -> i32 {
        let d = a.distance(b);
        let floors = i32::from(building.floors_crossed(a, b));
        let wall_excess = f64::from(self.excess_ddb_per_m) * (d - 5.0).max(0.0);
        let pl = f64::from(self.pl0_ddb)
            + f64::from(self.exponent_x10) * 10.0 * d.log10()
            + f64::from(self.floor_loss_ddb * floors)
            + wall_excess;
        pl as i32
    }

    /// Full link gain (negative deci-dB) from tx to rx including antenna
    /// gains and shadowing. `rx_gain_ddb` is the receiver's antenna gain.
    // Endpoint ids + seed must travel together for symmetric shadowing;
    // callers pass them straight through from the medium's entity table.
    #[allow(clippy::too_many_arguments)]
    pub fn link_gain_ddb(
        &self,
        building: &Building,
        a: &Point3,
        b: &Point3,
        id_a: u32,
        id_b: u32,
        rx_gain_ddb: i32,
        seed: u64,
    ) -> i32 {
        -self.path_loss_ddb(building, a, b) + rx_gain_ddb + self.shadowing_ddb(id_a, id_b, seed)
    }
}

/// Converts deci-dBm to linear milliwatts.
pub fn ddbm_to_mw(ddbm: i32) -> f64 {
    10f64.powf(f64::from(ddbm) / 100.0)
}

/// Converts linear milliwatts to deci-dBm (floored well below thermal).
pub fn mw_to_ddbm(mw: f64) -> i32 {
    if mw <= 1e-30 {
        -3000
    } else {
        (100.0 * mw.log10()) as i32
    }
}

/// SINR in deci-dB given signal and total interference+noise, both deci-dBm.
pub fn sinr_ddb(signal_ddbm: i32, interference_noise_ddbm: i32) -> i32 {
    signal_ddbm - interference_noise_ddbm
}

/// Bit error rate as a function of the SINR margin over the rate threshold.
///
/// Calibrated so that at margin 0 a 1500-byte frame fails ≈ 10% of the time,
/// improving ~10× per 3 dB. Clamped to [1e-9, 0.5].
pub fn bit_error_rate(margin_ddb: i32) -> f64 {
    let ber = 8.8e-6 * 10f64.powf(-f64::from(margin_ddb) / 30.0);
    ber.clamp(1e-9, 0.5)
}

/// Frame error probability for `len` bytes at `rate` under `sinr_ddb`.
pub fn frame_error_prob(sinr_ddb: i32, rate: PhyRate, len: usize) -> f64 {
    let margin = sinr_ddb - rate.snr_threshold_decidb();
    let ber = bit_error_rate(margin);
    let bits = (len * 8) as f64;
    1.0 - (1.0 - ber).powf(bits)
}

/// Probability that the PLCP preamble+header (robust, low-rate) decodes.
/// Below this the radio logs at most a PHY error.
pub fn preamble_success_prob(sinr_ddb: i32) -> f64 {
    // The preamble is ~192 bits at the most robust modulation (threshold of
    // the 1 Mbps rate), with ~1 dB of correlation margin.
    let margin = sinr_ddb - PhyRate::R1.snr_threshold_decidb() + 10;
    let ber = bit_error_rate(margin);
    (1.0 - ber).powf(192.0)
}

/// Per-reception multipath fading, deci-dB: a zero-mean draw with σ ≈ 5 dB,
/// clamped to ±18 dB. Applied independently per (transmission, receiver),
/// it smears the decode boundary — the same link yields clean frames,
/// FCS errors and PHY errors across receptions, as real traces show.
pub fn fading_ddb<R: rand::Rng>(rng: &mut R) -> i32 {
    let draw = crate::rng::normal(rng, 0.0, 50.0);
    draw.clamp(-180.0, 180.0) as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Building;

    #[test]
    fn path_loss_increases_with_distance() {
        let b = Building::ucsd_cse();
        let m = PropModel::default();
        let a = b.at(0, 0.0, 0.0);
        let mut last = 0;
        for d in [1.0, 5.0, 10.0, 30.0, 70.0] {
            let p = b.at(0, d, 0.0);
            let pl = m.path_loss_ddb(&b, &a, &p);
            assert!(pl > last, "non-monotone at {d}");
            last = pl;
        }
    }

    #[test]
    fn floor_penalty() {
        let b = Building::ucsd_cse();
        let m = PropModel::default();
        let a = b.at(0, 10.0, 10.0);
        let same = b.at(0, 15.0, 10.0);
        let mut above = b.at(1, 15.0, 10.0);
        above.z = same.z + Building::FLOOR_PITCH_M; // same x-y offset, one floor up
        let pl_same = m.path_loss_ddb(&b, &a, &same);
        let pl_above = m.path_loss_ddb(&b, &a, &above);
        assert!(pl_above > pl_same + m.floor_loss_ddb / 2);
    }

    #[test]
    fn shadowing_symmetric_and_bounded() {
        let m = PropModel::default();
        let mut extremes = 0;
        for i in 0..200u32 {
            for j in (i + 1)..(i + 4) {
                let s1 = m.shadowing_ddb(i, j, 42);
                let s2 = m.shadowing_ddb(j, i, 42);
                assert_eq!(s1, s2);
                if s1.abs() > 3 * m.shadow_sigma_ddb {
                    extremes += 1;
                }
            }
        }
        assert!(extremes < 6, "shadowing tail too fat: {extremes}");
    }

    #[test]
    fn shadowing_roughly_zero_mean() {
        let m = PropModel::default();
        let n = 2_000;
        let sum: i64 = (0..n)
            .map(|i| i64::from(m.shadowing_ddb(i, i + 1000, 7)))
            .sum();
        let mean = sum as f64 / f64::from(n);
        assert!(mean.abs() < 10.0, "mean shadowing {mean} deci-dB");
    }

    #[test]
    fn db_mw_roundtrip() {
        for ddbm in [-900, -500, 0, 150] {
            let back = mw_to_ddbm(ddbm_to_mw(ddbm));
            assert!((back - ddbm).abs() <= 1);
        }
    }

    #[test]
    fn fer_calibration_point() {
        // margin 0, 1500 bytes → ≈ 10%.
        let rate = PhyRate::R11;
        let sinr = rate.snr_threshold_decidb();
        let fer = frame_error_prob(sinr, rate, 1500);
        assert!((0.06..0.15).contains(&fer), "fer {fer}");
    }

    #[test]
    fn fer_improves_with_margin() {
        let rate = PhyRate::R11;
        let t = rate.snr_threshold_decidb();
        let f0 = frame_error_prob(t, rate, 1500);
        let f3 = frame_error_prob(t + 30, rate, 1500);
        let f6 = frame_error_prob(t + 60, rate, 1500);
        assert!(f0 > f3 && f3 > f6);
        assert!(f3 < 0.02);
        let fneg = frame_error_prob(t - 60, rate, 1500);
        assert!(fneg > 0.6);
    }

    #[test]
    fn short_frames_survive_where_long_die() {
        let rate = PhyRate::R11;
        let sinr = rate.snr_threshold_decidb() - 20;
        let long = frame_error_prob(sinr, rate, 1500);
        let ack = frame_error_prob(sinr, rate, 14);
        assert!(ack < long / 5.0, "ack {ack} vs data {long}");
    }

    #[test]
    fn preamble_more_robust_than_payload() {
        // At an SINR where an 11 Mbps payload is hopeless, the preamble
        // still usually decodes (yielding FCS-error events, not silence).
        let sinr = PhyRate::R1.snr_threshold_decidb() + 10;
        assert!(preamble_success_prob(sinr) > 0.9);
        assert!(frame_error_prob(sinr, PhyRate::R11, 1500) > 0.9);
    }
}
