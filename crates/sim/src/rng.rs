//! Deterministic randomness: one master seed fans out into independent
//! named streams so that adding a draw in one subsystem never perturbs
//! another (crucial for reproducible experiments and bisection debugging).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic RNG derived from `(seed, purpose)`.
pub fn stream(seed: u64, purpose: &str) -> ChaCha8Rng {
    // FNV-1a over the purpose string, folded into the seed.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in purpose.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    ChaCha8Rng::seed_from_u64(seed ^ h)
}

/// Samples a standard normal via Box–Muller (keeps us off `rand_distr`,
/// which is outside the approved dependency set).
pub fn normal<R: Rng>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std_dev * z
}

/// Samples an exponential with the given mean.
pub fn exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Samples a bounded Pareto (heavy-tailed flow sizes, web-like workloads).
pub fn bounded_pareto<R: Rng>(rng: &mut R, alpha: f64, lo: f64, hi: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    let x = (-(u * (ha - la) - ha) / (ha * la)).powf(-1.0 / alpha);
    x.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_independent() {
        let mut a1 = stream(42, "clocks");
        let mut a2 = stream(42, "clocks");
        let mut b = stream(42, "traffic");
        let x1: u64 = a1.gen();
        let x2: u64 = a2.gen();
        let y: u64 = b.gen();
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = stream(1, "x");
        let mut b = stream(2, "x");
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn normal_moments() {
        let mut rng = stream(7, "test-normal");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = stream(7, "test-exp");
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn pareto_bounds() {
        let mut rng = stream(9, "test-pareto");
        for _ in 0..10_000 {
            let x = bounded_pareto(&mut rng, 1.2, 1_000.0, 1_000_000.0);
            assert!((1_000.0..=1_000_000.0).contains(&x));
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let mut rng = stream(9, "test-pareto2");
        let n = 50_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| bounded_pareto(&mut rng, 1.2, 1_000.0, 1_000_000.0))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let median = {
            let mut s = samples.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[n / 2]
        };
        // Heavy tail: mean well above median.
        assert!(mean > 2.0 * median, "mean {mean}, median {median}");
    }
}
