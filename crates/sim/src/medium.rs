//! The shared radio medium: who is transmitting, who can hear what, and how
//! much interference every reception suffers.
//!
//! The medium is the source of all the ambiguity Jigsaw exists to resolve:
//! spatial diversity (no receiver hears everything), co-channel interference
//! from hidden terminals, adjacent-channel energy bleed, and capture
//! impairments. Receptions are resolved at transmission *end*, using a
//! snapshot of every transmission that overlapped in time.

use crate::geom::{Building, Point3};
#[cfg(test)]
use crate::prop::TX_POWER_DDBM;
use crate::prop::{ddbm_to_mw, mw_to_ddbm, PropModel, NOISE_FLOOR_DDBM};
use jigsaw_ieee80211::frame::Frame;
use jigsaw_ieee80211::{Channel, Micros, PhyRate};
use std::collections::HashMap;

/// What kind of radio an entity is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityKind {
    /// An AP or client: transmits and receives on a fixed channel.
    Station {
        /// Legacy 802.11b-only hardware (cannot decode or preamble-sense
        /// OFDM — it only energy-detects it).
        b_only: bool,
    },
    /// A passive monitor radio: receives everything on its channel.
    MonitorRadio,
    /// A non-802.11 interferer (microwave oven): transmits wideband noise.
    Interferer,
}

/// One radio-bearing entity in the building.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Position in the building.
    pub pos: Point3,
    /// Tuned channel (interferers: nominal center of their emission).
    pub channel: Channel,
    /// Role.
    pub kind: EntityKind,
    /// Receive antenna gain, deci-dB.
    pub ant_gain_ddb: i32,
    /// Transmit power, deci-dBm.
    pub tx_power_ddbm: i32,
}

/// A transmission in flight (or being described to a receiver).
#[derive(Debug, Clone)]
pub struct TxDesc {
    /// Transmitting entity.
    pub entity: u32,
    /// Channel transmitted on.
    pub channel: Channel,
    /// PHY rate.
    pub rate: PhyRate,
    /// Start of the transmission (air time of the preamble), µs true time.
    pub start: Micros,
    /// End of the transmission, µs true time.
    pub end: Micros,
    /// PLCP preamble+header duration (capture timestamp reference), µs.
    pub plcp_us: Micros,
    /// The decoded frame (None for noise bursts).
    pub frame: Option<Frame>,
    /// Full serialized frame bytes including FCS (empty for noise).
    pub bytes: Vec<u8>,
    /// True for non-802.11 wideband noise.
    pub is_noise: bool,
    /// Ground-truth record index assigned by the world.
    pub truth_idx: usize,
}

/// Snapshot of an overlapping transmission, taken when overlap is detected.
#[derive(Debug, Clone, Copy)]
pub struct OverlapInfo {
    /// The other transmitter's entity id.
    pub entity: u32,
    /// Its channel.
    pub channel: Channel,
    /// Its start time.
    pub start: Micros,
    /// Whether it was a noise burst.
    pub is_noise: bool,
}

/// A completed transmission together with everything that overlapped it.
#[derive(Debug, Clone)]
pub struct CompletedTx {
    /// The transmission.
    pub desc: TxDesc,
    /// All transmissions that overlapped it in time (any amount).
    pub overlaps: Vec<OverlapInfo>,
}

struct ActiveTx {
    desc: TxDesc,
    overlaps: Vec<OverlapInfo>,
}

/// The medium: entity table, precomputed pairwise link gains, active set.
pub struct Medium {
    entities: Vec<Entity>,
    /// Dense link-gain matrix, deci-dB: `gain[tx * n + rx]`.
    gains: Vec<i32>,
    active: HashMap<u64, ActiveTx>,
    next_id: u64,
    noise_mw: f64,
    /// Kept for gain recomputation when an entity moves mid-scenario.
    building: Building,
    prop: PropModel,
    seed: u64,
}

impl Medium {
    /// Builds the medium, precomputing the full pairwise gain matrix.
    pub fn new(building: &Building, prop: &PropModel, entities: Vec<Entity>, seed: u64) -> Self {
        let n = entities.len();
        let mut gains = vec![0i32; n * n];
        for (i, a) in entities.iter().enumerate() {
            for (j, b) in entities.iter().enumerate() {
                if i == j {
                    continue;
                }
                gains[i * n + j] = prop.link_gain_ddb(
                    building,
                    &a.pos,
                    &b.pos,
                    i as u32,
                    j as u32,
                    b.ant_gain_ddb,
                    seed,
                );
            }
        }
        Medium {
            entities,
            gains,
            active: HashMap::new(),
            next_id: 0,
            noise_mw: ddbm_to_mw(NOISE_FLOOR_DDBM),
            building: building.clone(),
            prop: prop.clone(),
            seed,
        }
    }

    /// Entity table access.
    pub fn entity(&self, id: u32) -> &Entity {
        &self.entities[id as usize]
    }

    /// The building geometry this medium was built for.
    pub fn building(&self) -> &Building {
        &self.building
    }

    /// Re-tunes an entity to a new channel. Link gains are
    /// channel-independent, so only the entity table changes; callers own
    /// any audibility-list refresh.
    pub fn retune(&mut self, id: u32, channel: Channel) {
        self.entities[id as usize].channel = channel;
    }

    /// Moves an entity, recomputing its row and column of the gain matrix.
    /// Deterministic: per-link shadowing depends only on the (unordered)
    /// entity-id pair and the scenario seed, so a relocation is exactly
    /// reproducible across runs.
    pub fn relocate(&mut self, id: u32, pos: Point3) {
        let i = id as usize;
        self.entities[i].pos = pos;
        let n = self.entities.len();
        for j in 0..n {
            if i == j {
                continue;
            }
            self.gains[i * n + j] = self.prop.link_gain_ddb(
                &self.building,
                &self.entities[i].pos,
                &self.entities[j].pos,
                id,
                j as u32,
                self.entities[j].ant_gain_ddb,
                self.seed,
            );
            self.gains[j * n + i] = self.prop.link_gain_ddb(
                &self.building,
                &self.entities[j].pos,
                &self.entities[i].pos,
                j as u32,
                id,
                self.entities[i].ant_gain_ddb,
                self.seed,
            );
        }
    }

    /// Number of entities.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Raw link gain tx→rx in deci-dB (no channel rejection).
    pub fn gain_ddb(&self, tx: u32, rx: u32) -> i32 {
        self.gains[tx as usize * self.entities.len() + rx as usize]
    }

    /// Received power at `rx` for a transmission from `tx` on `tx_chan`,
    /// deci-dBm, including the receiver's channel rejection.
    pub fn rx_power_ddbm(&self, tx: u32, rx: u32, tx_chan: Channel) -> i32 {
        let e = &self.entities[tx as usize];
        let rx_chan = self.entities[rx as usize].channel;
        e.tx_power_ddbm + self.gain_ddb(tx, rx) - rx_chan.rejection_decidb(tx_chan)
    }

    /// Registers a transmission; snapshots mutual overlaps with everything
    /// currently in flight. Returns the transmission id (schedule `TxEnd`
    /// for `desc.end` with it).
    pub fn start_tx(&mut self, desc: TxDesc) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let info = OverlapInfo {
            entity: desc.entity,
            channel: desc.channel,
            start: desc.start,
            is_noise: desc.is_noise,
        };
        let mut overlaps = Vec::new();
        for other in self.active.values_mut() {
            overlaps.push(OverlapInfo {
                entity: other.desc.entity,
                channel: other.desc.channel,
                start: other.desc.start,
                is_noise: other.desc.is_noise,
            });
            other.overlaps.push(info);
        }
        self.active.insert(id, ActiveTx { desc, overlaps });
        id
    }

    /// Completes a transmission, returning its description and overlap set.
    ///
    /// # Panics
    /// Panics if the id is unknown (double-end is a simulator bug).
    pub fn end_tx(&mut self, id: u64) -> CompletedTx {
        let a = self.active.remove(&id).expect("unknown transmission id");
        CompletedTx {
            desc: a.desc,
            overlaps: a.overlaps,
        }
    }

    /// Currently in-flight transmissions.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Total interference-plus-noise power at `rx`, deci-dBm, for a
    /// reception of `subject`, given its overlap snapshot.
    ///
    /// Sums, in linear space, the received power of every overlapping
    /// transmission (after channel rejection) plus the thermal floor.
    pub fn interference_ddbm(&self, rx: u32, overlaps: &[OverlapInfo]) -> i32 {
        let mut mw = self.noise_mw;
        for o in overlaps {
            if o.entity == rx {
                continue; // own transmission handled as half-duplex elsewhere
            }
            let p = self.rx_power_ddbm(o.entity, rx, o.channel);
            mw += ddbm_to_mw(p);
        }
        mw_to_ddbm(mw)
    }

    /// True if `rx` itself transmitted during the subject's airtime
    /// (half-duplex radios cannot receive while transmitting).
    pub fn rx_was_transmitting(&self, rx: u32, overlaps: &[OverlapInfo]) -> bool {
        overlaps.iter().any(|o| o.entity == rx)
    }

    /// The carrier-sense threshold (deci-dBm) that `listener` applies to a
    /// transmission with modulation of `rate`: legacy-b radios can only
    /// energy-detect OFDM (the 802.11g protection problem, paper §2).
    pub fn cs_threshold_ddbm(&self, listener: u32, rate: PhyRate, is_noise: bool) -> i32 {
        use crate::prop::{CS_ENERGY_DDBM, CS_PREAMBLE_DDBM};
        let b_only = matches!(
            self.entities[listener as usize].kind,
            EntityKind::Station { b_only: true }
        );
        if is_noise || (b_only && !rate.is_b_compatible()) {
            CS_ENERGY_DDBM
        } else {
            CS_PREAMBLE_DDBM
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Building;

    fn test_medium() -> Medium {
        let b = Building::ucsd_cse();
        let prop = PropModel {
            shadow_sigma_ddb: 0, // deterministic link budgets for tests
            ..PropModel::default()
        };
        let entities = vec![
            Entity {
                pos: b.at(0, 10.0, 10.0),
                channel: Channel::of(1),
                kind: EntityKind::Station { b_only: false },
                ant_gain_ddb: 0,
                tx_power_ddbm: TX_POWER_DDBM,
            },
            Entity {
                pos: b.at(0, 15.0, 10.0),
                channel: Channel::of(1),
                kind: EntityKind::Station { b_only: true },
                ant_gain_ddb: 0,
                tx_power_ddbm: TX_POWER_DDBM,
            },
            Entity {
                pos: b.at(0, 60.0, 25.0),
                channel: Channel::of(1),
                kind: EntityKind::MonitorRadio,
                ant_gain_ddb: 25,
                tx_power_ddbm: 0,
            },
            Entity {
                pos: b.at(0, 12.0, 10.0),
                channel: Channel::of(6),
                kind: EntityKind::MonitorRadio,
                ant_gain_ddb: 25,
                tx_power_ddbm: 0,
            },
        ];
        Medium::new(&b, &prop, entities, 1)
    }

    fn tx(entity: u32, chan: u8, start: Micros, end: Micros) -> TxDesc {
        TxDesc {
            entity,
            channel: Channel::of(chan),
            rate: PhyRate::R11,
            start,
            end,
            plcp_us: 192,
            frame: None,
            bytes: vec![],
            is_noise: false,
            truth_idx: 0,
        }
    }

    #[test]
    fn nearby_rx_power_exceeds_far() {
        let m = test_medium();
        let near = m.rx_power_ddbm(0, 1, Channel::of(1));
        let far = m.rx_power_ddbm(0, 2, Channel::of(1));
        assert!(near > far + 100, "near {near} far {far}");
    }

    #[test]
    fn cross_channel_rejection_applied() {
        let m = test_medium();
        // Same receiver (entity 3, tuned to ch6): a ch6 transmission arrives
        // at full strength, a ch1 transmission is notched by 100 dB.
        let co = m.rx_power_ddbm(0, 3, Channel::of(6));
        let off = m.rx_power_ddbm(0, 3, Channel::of(1));
        assert_eq!(co - off, Channel::of(6).rejection_decidb(Channel::of(1)));
        assert!(co - off >= 1000, "co {co}, off-channel {off}");
    }

    #[test]
    fn overlap_snapshotting() {
        let mut m = test_medium();
        let t1 = m.start_tx(tx(0, 1, 100, 500));
        let t2 = m.start_tx(tx(1, 1, 200, 400));
        assert_eq!(m.active_count(), 2);
        let done2 = m.end_tx(t2);
        assert_eq!(done2.overlaps.len(), 1);
        assert_eq!(done2.overlaps[0].entity, 0);
        let done1 = m.end_tx(t1);
        assert_eq!(done1.overlaps.len(), 1);
        assert_eq!(done1.overlaps[0].entity, 1);
        assert_eq!(m.active_count(), 0);
    }

    #[test]
    fn non_overlapping_txs_dont_interfere() {
        let mut m = test_medium();
        let t1 = m.start_tx(tx(0, 1, 100, 200));
        let done1 = m.end_tx(t1);
        let t2 = m.start_tx(tx(1, 1, 300, 400));
        let done2 = m.end_tx(t2);
        assert!(done1.overlaps.is_empty());
        assert!(done2.overlaps.is_empty());
    }

    #[test]
    fn interference_sums_in_linear_space() {
        let m = test_medium();
        // Receiver entity 3 (ch6, 2 m away) hears a strong ch6 interferer.
        let o = OverlapInfo {
            entity: 0,
            channel: Channel::of(6),
            start: 0,
            is_noise: false,
        };
        let i1 = m.interference_ddbm(3, &[o]);
        assert!(i1 > NOISE_FLOOR_DDBM + 100, "interferer drowned: {i1}");
        let i2 = m.interference_ddbm(3, &[o, o]);
        // Doubling the interferer power adds ≈ 3 dB (30 deci-dB).
        assert!((i2 - i1 - 30).abs() <= 2, "i1 {i1} i2 {i2}");
        // No overlaps → the noise floor.
        assert_eq!(m.interference_ddbm(3, &[]), NOISE_FLOOR_DDBM);
    }

    #[test]
    fn half_duplex_detection() {
        let m = test_medium();
        let own = OverlapInfo {
            entity: 2,
            channel: Channel::of(1),
            start: 0,
            is_noise: false,
        };
        assert!(m.rx_was_transmitting(2, &[own]));
        assert!(!m.rx_was_transmitting(1, &[own]));
    }

    #[test]
    fn legacy_b_only_energy_detects_ofdm() {
        let m = test_medium();
        use crate::prop::{CS_ENERGY_DDBM, CS_PREAMBLE_DDBM};
        // entity 1 is b-only.
        assert_eq!(m.cs_threshold_ddbm(1, PhyRate::R54, false), CS_ENERGY_DDBM);
        assert_eq!(
            m.cs_threshold_ddbm(1, PhyRate::R11, false),
            CS_PREAMBLE_DDBM
        );
        // entity 0 is b/g.
        assert_eq!(
            m.cs_threshold_ddbm(0, PhyRate::R54, false),
            CS_PREAMBLE_DDBM
        );
        // noise is always energy-detect.
        assert_eq!(m.cs_threshold_ddbm(0, PhyRate::R1, true), CS_ENERGY_DDBM);
    }
}
