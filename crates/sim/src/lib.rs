//! # jigsaw-sim
//!
//! A discrete-event simulator of a building-scale production 802.11b/g
//! network — the stand-in for the UCSD CSE building deployment that the
//! Jigsaw paper measures (paper §3). Nothing in the measurement pipeline
//! (`jigsaw-core`, `jigsaw-analysis`) depends on this crate; it exists to
//! *generate* the distributed radio traces, the wired distribution-network
//! trace, and a ground-truth RF schedule against which the pipeline's
//! inferences can be validated.
//!
//! ## What is modeled
//!
//! * **Geometry & propagation** — a four-floor building; log-distance path
//!   loss with floor attenuation and per-link lognormal shadowing; SINR with
//!   cumulative interference; a rate- and length-dependent frame error model
//!   ([`prop`]).
//! * **The medium** — overlapping transmissions, physical + virtual (NAV)
//!   carrier sense, legacy-radio blindness to OFDM (the root cause of
//!   802.11g protection mode), microwave-oven wideband interference
//!   ([`medium`]).
//! * **DCF MAC** — DIFS/SIFS, binary-exponential backoff, link-layer
//!   retransmission with retry bits and sequence numbers, duration/NAV,
//!   ACKs, CTS-to-self protection, ARF rate adaptation ([`mac`]).
//! * **Infrastructure** — APs with beacons, association, wired bridging of
//!   broadcasts (ARP!), and the overly conservative protection-mode timeout
//!   the paper's §7.3 critiques; clients with probe/auth/associate state
//!   machines and diurnal activity ([`station`]).
//! * **Transport & workloads** — TCP endpoints (slow start, congestion
//!   avoidance, fast retransmit, RTO) over the WLAN bridged to wired hosts;
//!   web/ssh/scp-style workloads; a Vernier-style ARP management server; the
//!   MS Office UDP-broadcast anti-piracy beacon (footnote 6) ([`tcp`],
//!   [`traffic`], [`wired`]).
//! * **Monitoring infrastructure** — 39 pods × 2 monitors × 2 radios with
//!   per-monitor free-running 1 µs clocks (offset + ppm skew + random-walk
//!   drift), NTP wall-clock anchors, capture impairments (FCS corruption,
//!   snap truncation, PHY errors) ([`monitor`], [`clock`]).
//!
//! ## What is deliberately not modeled
//!
//! Power-save buffering, 802.11e QoS, fragmentation, WEP payload crypto,
//! client mobility mid-session, and 5 GHz operation — none of which the
//! paper's evaluation depends on.
//!
//! Everything is deterministic given a [`scenario::ScenarioConfig`] seed.

pub mod clock;
pub mod event;
pub mod frames;
pub mod geom;
pub mod mac;
pub mod medium;
pub mod monitor;
pub mod output;
pub mod prop;
pub mod rng;
pub mod scenario;
pub mod spec;
pub mod station;
pub mod tcp;
pub mod traffic;
pub mod wired;
pub mod world;

pub use output::{GroundTruth, SimOutput, TruthRecord, WiredRecord};
pub use scenario::ScenarioConfig;
pub use spec::ScenarioSpec;
pub use world::World;

/// Index of a MAC-bearing station (AP or client) in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StationId(pub u16);

impl StationId {
    /// As a usize index.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

/// Index of a wired host (server) attached to the distribution network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostId(pub u16);

impl HostId {
    /// As a usize index.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}
