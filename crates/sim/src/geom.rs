//! Building geometry: positions in meters, floors, and the pod/AP layout
//! helpers used by scenario construction.
//!
//! The modeled building mirrors the paper's Figure 1 at parameter level:
//! four floors, two wings per floor joined by a central core,
//! roughly 75 m × 35 m footprint (≈ 150,000 sq ft over four floors),
//! 3.5 m floor pitch.

/// A position in the building, meters. `z` increases with floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point3 {
    /// East-west, 0..≈75 m.
    pub x: f64,
    /// North-south, 0..≈35 m.
    pub y: f64,
    /// Height: floor × [`Building::FLOOR_PITCH_M`].
    pub z: f64,
}

impl Point3 {
    /// Constructs a point.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Euclidean distance, meters (floored at 0.5 m so co-located antennas
    /// never yield a degenerate zero-distance path loss).
    pub fn distance(&self, other: &Point3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt().max(0.5)
    }
}

/// Building-level constants and placement helpers.
#[derive(Debug, Clone)]
pub struct Building {
    /// East-west extent, m.
    pub width_m: f64,
    /// North-south extent, m.
    pub depth_m: f64,
    /// Number of floors.
    pub floors: u8,
}

impl Building {
    /// Vertical distance between floors, m.
    pub const FLOOR_PITCH_M: f64 = 3.5;

    /// The paper's building: ~150,000 sq ft over four floors.
    pub fn ucsd_cse() -> Self {
        Building {
            width_m: 75.0,
            depth_m: 35.0,
            floors: 4,
        }
    }

    /// A point on a given floor (0-based).
    pub fn at(&self, floor: u8, x: f64, y: f64) -> Point3 {
        Point3::new(
            x.clamp(0.0, self.width_m),
            y.clamp(0.0, self.depth_m),
            f64::from(floor) * Self::FLOOR_PITCH_M + 1.5, // antenna height
        )
    }

    /// Which floor a point lies on.
    pub fn floor_of(&self, p: &Point3) -> u8 {
        ((p.z / Self::FLOOR_PITCH_M).floor() as i64).clamp(0, i64::from(self.floors) - 1) as u8
    }

    /// Number of floor slabs a straight line between two points crosses.
    pub fn floors_crossed(&self, a: &Point3, b: &Point3) -> u8 {
        self.floor_of(a).abs_diff(self.floor_of(b))
    }

    /// Evenly spreads `n` positions across corridors of all floors:
    /// a serpentine per-floor grid, matching how both the production APs and
    /// the sensor pods are corridor-mounted in the paper.
    pub fn corridor_grid(&self, n: usize) -> Vec<Point3> {
        let mut out = Vec::with_capacity(n);
        if n == 0 {
            return out;
        }
        let per_floor = n.div_ceil(usize::from(self.floors));
        let mut placed = 0usize;
        for floor in 0..self.floors {
            let here = per_floor.min(n - placed);
            if here == 0 {
                break;
            }
            // Two corridor rows per floor at 1/3 and 2/3 depth.
            let rows = [self.depth_m / 3.0, 2.0 * self.depth_m / 3.0];
            let per_row = here.div_ceil(2);
            for (r, &y) in rows.iter().enumerate() {
                let count = if r == 0 { per_row } else { here - per_row };
                for i in 0..count {
                    let frac = (i as f64 + 0.5) / count.max(1) as f64;
                    out.push(self.at(floor, frac * self.width_m, y));
                    placed += 1;
                }
            }
        }
        out.truncate(n);
        out
    }

    /// Spreads `n` client/office positions pseudo-deterministically across
    /// office space (off-corridor), using a low-discrepancy pattern.
    pub fn office_positions(&self, n: usize) -> Vec<Point3> {
        let mut out = Vec::with_capacity(n);
        let phi = 0.618_033_988_749_894_9_f64; // golden-ratio sequence
        for i in 0..n {
            let floor = (i % usize::from(self.floors)) as u8;
            let fx = ((i as f64) * phi).fract();
            let fy = ((i as f64) * phi * phi).fract();
            out.push(self.at(floor, fx * self.width_m, fy * self.depth_m));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(3.0, 4.0, 0.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-9);
        // Degenerate distance floored.
        assert!(a.distance(&a) >= 0.5);
    }

    #[test]
    fn floors() {
        let b = Building::ucsd_cse();
        let p0 = b.at(0, 10.0, 10.0);
        let p3 = b.at(3, 10.0, 10.0);
        assert_eq!(b.floor_of(&p0), 0);
        assert_eq!(b.floor_of(&p3), 3);
        assert_eq!(b.floors_crossed(&p0, &p3), 3);
        assert_eq!(b.floors_crossed(&p0, &p0), 0);
    }

    #[test]
    fn corridor_grid_counts_and_bounds() {
        let b = Building::ucsd_cse();
        for n in [0, 1, 4, 39, 44, 156] {
            let pts = b.corridor_grid(n);
            assert_eq!(pts.len(), n);
            for p in &pts {
                assert!(p.x >= 0.0 && p.x <= b.width_m);
                assert!(p.y >= 0.0 && p.y <= b.depth_m);
            }
        }
    }

    #[test]
    fn corridor_grid_spans_floors() {
        let b = Building::ucsd_cse();
        let pts = b.corridor_grid(40);
        let floors: std::collections::HashSet<u8> = pts.iter().map(|p| b.floor_of(p)).collect();
        assert_eq!(floors.len(), 4, "pods should cover all four floors");
    }

    #[test]
    fn office_positions_disperse() {
        let b = Building::ucsd_cse();
        let pts = b.office_positions(100);
        assert_eq!(pts.len(), 100);
        // No two clients exactly co-located.
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                assert!(pts[i].distance(&pts[j]) > 0.4);
            }
        }
    }

    #[test]
    fn clamping() {
        let b = Building::ucsd_cse();
        let p = b.at(0, -5.0, 1e9);
        assert_eq!(p.x, 0.0);
        assert_eq!(p.y, b.depth_m);
    }
}
