//! Workload generation: diurnal user sessions and the traffic mixes the
//! paper observes — web browsing, interactive ssh, bulk scp (§6's oracle
//! workload is exactly this trio), plus the pathological broadcast sources
//! §7.1 calls out (Vernier ARP scanning, MS Office UDP beacons).

use crate::rng::{bounded_pareto, exponential};
use crate::{HostId, StationId};
use jigsaw_ieee80211::Micros;
use rand::Rng;

/// The kind of a TCP flow (drives size and interactivity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// A web-style download (heavy-tailed size).
    Web,
    /// An interactive ssh session: many small request/response exchanges.
    Ssh,
    /// A bulk copy, upstream or down.
    Scp {
        /// True when the client uploads.
        upload: bool,
    },
    /// Background keepalive chatter from overnight machines.
    Background,
}

/// A TCP flow in progress, tying two endpoints together.
#[derive(Debug)]
pub struct Flow {
    /// Flow index.
    pub id: u32,
    /// The wireless client.
    pub client: StationId,
    /// The wired peer.
    pub host: HostId,
    /// Client's ephemeral port.
    pub client_port: u16,
    /// Server port.
    pub host_port: u16,
    /// Flow kind.
    pub kind: FlowKind,
    /// Remaining interactive exchanges (ssh only).
    pub exchanges_left: u32,
    /// Client-side TCP endpoint.
    pub client_end: crate::tcp::TcpEndpoint,
    /// Host-side TCP endpoint.
    pub host_end: crate::tcp::TcpEndpoint,
    /// Set when both sides are finished and accounted.
    pub completed: bool,
    /// True time the flow was opened (watchdog reference).
    pub created_at: jigsaw_ieee80211::Micros,
}

/// Activity chosen at each workload step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Browse: 1–4 web flows.
    Web {
        /// Number of parallel fetches.
        fetches: u8,
    },
    /// One interactive ssh session.
    Ssh,
    /// One bulk transfer.
    Scp {
        /// Upload or download.
        upload: bool,
    },
    /// Idle this step.
    Think,
}

/// Workload parameters, all scaled by the scenario's time compression.
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    /// Mean think time between activities, µs.
    pub think_mean_us: f64,
    /// Web flow size range (bytes), Pareto α.
    pub web_lo: f64,
    /// Upper bound of web flow sizes.
    pub web_hi: f64,
    /// Pareto shape for web sizes.
    pub web_alpha: f64,
    /// ssh exchanges per session range.
    pub ssh_exchanges: (u32, u32),
    /// Mean gap between ssh keystроke bursts, µs.
    pub ssh_gap_mean_us: f64,
    /// scp size range (bytes).
    pub scp_lo: f64,
    /// scp size upper bound.
    pub scp_hi: f64,
    /// Background flow size (bytes).
    pub background_bytes: u64,
    /// Mean gap between background flows, µs.
    pub background_gap_us: f64,
}

impl WorkloadParams {
    /// Defaults for a time-compressed day: `compression` = how many real
    /// seconds one simulated second represents (60 → a 24 h day in 24 min).
    pub fn compressed(compression: f64) -> Self {
        WorkloadParams {
            think_mean_us: 30_000_000.0 / compression,
            web_lo: 2_000.0,
            web_hi: 400_000.0,
            web_alpha: 1.2,
            ssh_exchanges: (5, 40),
            ssh_gap_mean_us: 2_000_000.0 / compression,
            scp_lo: 100_000.0,
            scp_hi: 3_000_000.0,
            background_bytes: 1_500,
            background_gap_us: 120_000_000.0 / compression,
        }
    }
}

/// Per-client traffic class for QoS/fairness scenarios. The default,
/// [`WorkloadClass::Mixed`], reproduces the paper's global activity mix;
/// the others skew one client toward a single service class so fairness
/// between competing classes can be measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkloadClass {
    /// The paper's default web/ssh/scp/think mix.
    #[default]
    Mixed,
    /// Interactive-dominated: mostly ssh, small web fetches, few thinks.
    Interactive,
    /// Bulk-transfer-dominated: back-to-back scp in one direction.
    Bulk {
        /// True when the client uploads.
        upload: bool,
    },
}

/// Samples the next activity for an active user of the given class.
/// `Mixed` delegates to [`pick_activity`] and consumes the exact same RNG
/// draws, so default-class clients behave bit-identically to before this
/// knob existed.
pub fn pick_activity_for<R: Rng>(rng: &mut R, class: WorkloadClass) -> Activity {
    match class {
        WorkloadClass::Mixed => pick_activity(rng),
        WorkloadClass::Interactive => {
            let x: f64 = rng.gen_range(0.0..1.0);
            if x < 0.75 {
                Activity::Ssh
            } else if x < 0.90 {
                Activity::Web { fetches: 1 }
            } else {
                Activity::Think
            }
        }
        WorkloadClass::Bulk { upload } => {
            let x: f64 = rng.gen_range(0.0..1.0);
            if x < 0.80 {
                Activity::Scp { upload }
            } else {
                Activity::Think
            }
        }
    }
}

/// Samples the next activity for an active user.
pub fn pick_activity<R: Rng>(rng: &mut R) -> Activity {
    let x: f64 = rng.gen_range(0.0..1.0);
    if x < 0.55 {
        Activity::Web {
            fetches: rng.gen_range(1..=4),
        }
    } else if x < 0.70 {
        Activity::Ssh
    } else if x < 0.80 {
        Activity::Scp {
            upload: rng.gen_bool(0.4),
        }
    } else {
        Activity::Think
    }
}

/// Samples a web transfer size.
pub fn web_size<R: Rng>(rng: &mut R, p: &WorkloadParams) -> u64 {
    bounded_pareto(rng, p.web_alpha, p.web_lo, p.web_hi) as u64
}

/// Samples an scp transfer size.
pub fn scp_size<R: Rng>(rng: &mut R, p: &WorkloadParams) -> u64 {
    rng.gen_range(p.scp_lo..p.scp_hi) as u64
}

/// Samples a think time.
pub fn think_time<R: Rng>(rng: &mut R, p: &WorkloadParams) -> Micros {
    exponential(rng, p.think_mean_us).max(1_000.0) as Micros
}

/// Samples an ssh inter-exchange gap.
pub fn ssh_gap<R: Rng>(rng: &mut R, p: &WorkloadParams) -> Micros {
    exponential(rng, p.ssh_gap_mean_us).max(1_000.0) as Micros
}

/// Samples a diurnal user session within a day of `day_us` µs:
/// `(start, end, overnight)`. The distribution follows the paper's Figure 8:
/// most sessions start between 9 am and 5 pm; a minority of machines stay on
/// all day producing background traffic.
pub fn sample_session<R: Rng>(rng: &mut R, day_us: Micros) -> (Micros, Micros, bool) {
    let day = day_us as f64;
    if rng.gen_bool(0.15) {
        // Overnight machine: active the whole day.
        return (0, day_us, true);
    }
    // Session start: triangular-ish peak at 11 am.
    let frac: f64 = {
        let a: f64 = rng.gen_range(0.0..1.0);
        let b: f64 = rng.gen_range(0.0..1.0);
        // Average of two uniforms peaks at 0.5; shift window to 8am..6pm.
        (8.0 + (a + b) / 2.0 * 10.0) / 24.0
    };
    let start = (frac * day) as Micros;
    // Session length: 30 min to 6 h (day fraction 1/48 .. 1/4).
    let len_frac: f64 = rng.gen_range(1.0 / 48.0..0.25);
    let end = (start + (len_frac * day) as Micros).min(day_us);
    (start, end, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream;

    #[test]
    fn activity_mix_roughly_matches_weights() {
        let mut rng = stream(1, "traffic-test");
        let n = 20_000;
        let mut web = 0;
        let mut ssh = 0;
        let mut scp = 0;
        let mut think = 0;
        for _ in 0..n {
            match pick_activity(&mut rng) {
                Activity::Web { fetches } => {
                    assert!((1..=4).contains(&fetches));
                    web += 1;
                }
                Activity::Ssh => ssh += 1,
                Activity::Scp { .. } => scp += 1,
                Activity::Think => think += 1,
            }
        }
        let f = |x: i32| f64::from(x) / n as f64;
        assert!((f(web) - 0.55).abs() < 0.02);
        assert!((f(ssh) - 0.15).abs() < 0.02);
        assert!((f(scp) - 0.10).abs() < 0.02);
        assert!((f(think) - 0.20).abs() < 0.02);
    }

    #[test]
    fn sessions_fit_in_day() {
        let mut rng = stream(2, "traffic-test");
        let day = 86_400_000_000u64;
        let mut overnight = 0;
        for _ in 0..2_000 {
            let (s, e, o) = sample_session(&mut rng, day);
            assert!(s <= e);
            assert!(e <= day);
            if o {
                overnight += 1;
                assert_eq!(s, 0);
            } else {
                // Daytime session: starts in 8am–6pm.
                let frac = s as f64 / day as f64;
                assert!((0.32..0.76).contains(&frac), "start frac {frac}");
            }
        }
        let rate = f64::from(overnight) / 2_000.0;
        assert!((rate - 0.15).abs() < 0.03, "overnight rate {rate}");
    }

    #[test]
    fn sessions_peak_midday() {
        let mut rng = stream(3, "traffic-test");
        let day = 86_400_000_000u64;
        let mut morning = 0; // 8-11am
        let mut midday = 0; // 11am-3pm
        for _ in 0..5_000 {
            let (s, _, o) = sample_session(&mut rng, day);
            if o {
                continue;
            }
            let h = s as f64 / day as f64 * 24.0;
            if (8.0..11.0).contains(&h) {
                morning += 1;
            } else if (11.0..15.0).contains(&h) {
                midday += 1;
            }
        }
        assert!(midday > morning, "midday {midday} vs morning {morning}");
    }

    #[test]
    fn compressed_params_scale() {
        let p1 = WorkloadParams::compressed(1.0);
        let p60 = WorkloadParams::compressed(60.0);
        assert!((p1.think_mean_us / p60.think_mean_us - 60.0).abs() < 1e-9);
        // Flow sizes do NOT scale (bytes are bytes).
        assert_eq!(p1.web_hi, p60.web_hi);
    }

    #[test]
    fn sizes_within_bounds() {
        let mut rng = stream(4, "traffic-test");
        let p = WorkloadParams::compressed(60.0);
        for _ in 0..5_000 {
            let w = web_size(&mut rng, &p);
            assert!((2_000..=400_000).contains(&w));
            let s = scp_size(&mut rng, &p);
            assert!((100_000..3_000_000).contains(&s));
        }
    }
}
