//! Passive monitoring infrastructure: pods, monitors, radios, and trace
//! collection — the simulated counterpart of the paper's 39 sensor pods
//! (78 Soekris monitors, 156 radios) (§3.2–3.3).

use crate::clock::ClockCursor;
use jigsaw_ieee80211::{Channel, Micros};
use jigsaw_trace::{MonitorId, PhyEvent, RadioId, RadioMeta};

/// One monitor: a system board driving two radios that share one clock.
#[derive(Debug)]
pub struct Monitor {
    /// Monitor id.
    pub id: MonitorId,
    /// Its clock (offset + skew + drift; also timestamps both radios).
    pub clock: ClockCursor,
    /// The two radios: (radio id, medium entity id, channel).
    pub radios: [MonitorRadio; 2],
}

/// One monitor radio.
#[derive(Debug, Clone, Copy)]
pub struct MonitorRadio {
    /// Global radio id (trace identity).
    pub radio: RadioId,
    /// Entity index in the medium.
    pub entity: u32,
    /// Tuned channel.
    pub channel: Channel,
}

impl Monitor {
    /// The trace metadata for radio slot `i`, anchored at true time 0.
    pub fn radio_meta(&mut self, i: usize) -> RadioMeta {
        let anchor_local_us = self.clock.local(0);
        let anchor_wall_us = self.clock.model().wall(0);
        RadioMeta {
            radio: self.radios[i].radio,
            monitor: self.id,
            channel: self.radios[i].channel,
            anchor_wall_us,
            anchor_local_us,
        }
    }
}

/// Collects one radio's PHY events (in memory; the world drains these into
/// `SimOutput` / trace files at the end of a run).
#[derive(Debug, Default)]
pub struct TraceCollector {
    /// Captured events in local-time order.
    pub events: Vec<PhyEvent>,
    /// Running counters for Table-1 style stats.
    pub n_ok: u64,
    /// FCS-error events.
    pub n_fcs_err: u64,
    /// PHY-error events.
    pub n_phy_err: u64,
}

impl TraceCollector {
    /// Appends an event, maintaining counters.
    pub fn push(&mut self, ev: PhyEvent) {
        match ev.status {
            jigsaw_trace::PhyStatus::Ok => self.n_ok += 1,
            jigsaw_trace::PhyStatus::FcsError => self.n_fcs_err += 1,
            jigsaw_trace::PhyStatus::PhyError => self.n_phy_err += 1,
        }
        self.events.push(ev);
    }

    /// Total events captured.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sorts events by local timestamp (they are *almost* sorted already;
    /// 1 µs quantization of skewed clocks can produce rare equal/owed
    /// inversions at block boundaries). Stable, so same-timestamp order is
    /// preserved.
    pub fn finalize(&mut self) {
        self.events.sort_by_key(|e| e.ts_local);
    }
}

/// The time a capture is stamped at, relative to the true start of the
/// transmission: monitors timestamp at the end of the PLCP (start of the
/// MAC payload), the way Atheros hardware behaves.
pub fn capture_timestamp(clock: &mut ClockCursor, tx_start: Micros, plcp_us: Micros) -> Micros {
    clock.local(tx_start + plcp_us)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockModel;
    use jigsaw_trace::PhyStatus;

    fn event(ts: Micros, status: PhyStatus) -> PhyEvent {
        PhyEvent {
            radio: RadioId(1),
            ts_local: ts,
            channel: Channel::of(6),
            rate: jigsaw_ieee80211::PhyRate::R11,
            rssi_dbm: -55,
            status,
            wire_len: 10,
            bytes: vec![0; 10].into(),
        }
    }

    #[test]
    fn collector_counts() {
        let mut c = TraceCollector::default();
        c.push(event(3, PhyStatus::Ok));
        c.push(event(1, PhyStatus::FcsError));
        c.push(event(2, PhyStatus::PhyError));
        assert_eq!((c.n_ok, c.n_fcs_err, c.n_phy_err), (1, 1, 1));
        assert_eq!(c.len(), 3);
        c.finalize();
        let ts: Vec<_> = c.events.iter().map(|e| e.ts_local).collect();
        assert_eq!(ts, vec![1, 2, 3]);
    }

    #[test]
    fn radio_meta_anchoring() {
        let model = ClockModel::new(5_000_000, 0.0, vec![], 2_000);
        let mut m = Monitor {
            id: MonitorId(4),
            clock: ClockCursor::new(model),
            radios: [
                MonitorRadio {
                    radio: RadioId(8),
                    entity: 100,
                    channel: Channel::of(1),
                },
                MonitorRadio {
                    radio: RadioId(9),
                    entity: 101,
                    channel: Channel::of(6),
                },
            ],
        };
        let meta0 = m.radio_meta(0);
        assert_eq!(meta0.radio, RadioId(8));
        assert_eq!(meta0.monitor, MonitorId(4));
        assert_eq!(meta0.anchor_local_us, 5_000_000);
        assert_eq!(meta0.anchor_wall_us, 2_000);
        let meta1 = m.radio_meta(1);
        // Same monitor clock anchors both radios — the §4.1 bridge property.
        assert_eq!(meta1.anchor_local_us, meta0.anchor_local_us);
        assert_eq!(meta1.anchor_wall_us, meta0.anchor_wall_us);
    }

    #[test]
    fn capture_timestamp_uses_plcp_offset() {
        let mut clock = ClockCursor::new(ClockModel::new(100, 0.0, vec![], 0));
        assert_eq!(capture_timestamp(&mut clock, 1_000, 192), 1_292);
    }
}
