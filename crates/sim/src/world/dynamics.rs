//! Mid-run world dynamics: client roaming, AP channel re-allocation, and
//! the audibility-list maintenance they require.
//!
//! The static world precomputes, per transmitter, the list of stations and
//! monitor radios that could possibly hear it (`World::audible_stations`,
//! `World::audible_radios`). Roaming and re-allocation invalidate those
//! lists, so every mutation funnels through [`World::refresh_audibility`],
//! which rebuilds exactly the affected rows while preserving the canonical
//! ascending-entity ordering the rest of the simulator (and its RNG-draw
//! sequence) depends on.

use super::World;
use crate::event::EventKind;
use crate::geom::Point3;
use crate::medium::EntityKind;
use crate::prop::AUDIBLE_CUTOFF_DDBM;
use crate::station::AssocPhase;
use crate::StationId;
use jigsaw_ieee80211::{Channel, Micros};

impl World {
    /// Rebuilds every audibility-list row touched by a change to `entity`
    /// (position or channel): its own transmit lists, and its entry in every
    /// other transmitter's list. Entries stay sorted by receiver entity id —
    /// the same order the initial build produces — so capture and delivery
    /// iteration order (and therefore RNG consumption) is canonical.
    pub fn refresh_audibility(&mut self, entity: u32) {
        let n = self.medium.entity_count() as u32;
        let subject_kind = self.medium.entity(entity).kind;

        // 1. `entity` as transmitter: rebuild its own lists.
        let mut st: Vec<(StationId, i32)> = Vec::new();
        let mut rad: Vec<(u32, i32)> = Vec::new();
        if !matches!(subject_kind, EntityKind::MonitorRadio) {
            let tx_chan = self.medium.entity(entity).channel;
            for rx in 0..n {
                if rx == entity {
                    continue;
                }
                let p = self.medium.rx_power_ddbm(entity, rx, tx_chan);
                if p < AUDIBLE_CUTOFF_DDBM {
                    continue;
                }
                match self.medium.entity(rx).kind {
                    EntityKind::Station { .. } => {
                        if let Some(sid) = self.entity_station[rx as usize] {
                            st.push((sid, p));
                        }
                    }
                    EntityKind::MonitorRadio => rad.push((rx, p)),
                    EntityKind::Interferer => {}
                }
            }
        }
        self.audible_stations[entity as usize] = st;
        self.audible_radios[entity as usize] = rad;

        // 2. `entity` as receiver: update its entry in every other
        // transmitter's list. Station entities precede monitors and
        // interferers, so ascending entity order equals ascending StationId
        // order within `audible_stations`.
        let as_station = self.entity_station[entity as usize];
        let as_radio = matches!(subject_kind, EntityKind::MonitorRadio);
        for tx in 0..n {
            if tx == entity || matches!(self.medium.entity(tx).kind, EntityKind::MonitorRadio) {
                continue;
            }
            let tx_chan = self.medium.entity(tx).channel;
            let p = self.medium.rx_power_ddbm(tx, entity, tx_chan);
            let keep = p >= AUDIBLE_CUTOFF_DDBM;
            if let Some(sid) = as_station {
                let list = &mut self.audible_stations[tx as usize];
                match list.binary_search_by_key(&sid, |&(s, _)| s) {
                    Ok(k) if keep => list[k].1 = p,
                    Ok(k) => {
                        list.remove(k);
                    }
                    Err(k) if keep => list.insert(k, (sid, p)),
                    Err(_) => {}
                }
            } else if as_radio {
                let list = &mut self.audible_radios[tx as usize];
                match list.binary_search_by_key(&entity, |&(e, _)| e) {
                    Ok(k) if keep => list[k].1 = p,
                    Ok(k) => {
                        list.remove(k);
                    }
                    Err(k) if keep => list.insert(k, (entity, p)),
                    Err(_) => {}
                }
            }
        }
    }

    /// Re-tunes a station's radio and refreshes audibility.
    pub fn retune_station(&mut self, sid: StationId, channel: Channel) {
        let entity = self.stations[sid.index()].entity;
        self.medium.retune(entity, channel);
        self.refresh_audibility(entity);
    }

    /// Moves a station (optionally retuning it in the same step) and
    /// refreshes audibility once.
    pub fn move_station(&mut self, sid: StationId, pos: Point3, channel: Option<Channel>) {
        let entity = self.stations[sid.index()].entity;
        self.medium.relocate(entity, pos);
        if let Some(ch) = channel {
            self.medium.retune(entity, ch);
        }
        self.refresh_audibility(entity);
    }

    /// A roaming client walks to (near) its next internal AP, retunes to
    /// that AP's channel, and rescans. Reschedules itself every `dwell_us`.
    pub(crate) fn on_client_roam(&mut self, sid: StationId, dwell_us: Micros) {
        let now = self.now;
        // A radio cannot retune mid-frame; try again shortly.
        if self.stations[sid.index()].mac.radio_busy {
            self.queue.schedule(
                now + 2_000,
                EventKind::ClientRoam {
                    station: sid,
                    dwell_us,
                },
            );
            return;
        }
        let n_aps = self.cfg.n_aps;
        if n_aps == 0 {
            return;
        }
        let target = {
            let cs = match self.stations[sid.index()].role.as_client_mut() {
                Some(c) => c,
                None => return,
            };
            cs.roam_count += 1;
            let cur = cs.ap.map(|a| a.index()).unwrap_or(usize::MAX);
            let mut t = (sid.index() + cs.roam_count as usize) % n_aps;
            if n_aps > 1 && t == cur {
                t = (t + 1) % n_aps;
            }
            // Silent leave: no disassoc on the air, the old AP keeps a stale
            // association — exactly the mid-session mobility the merge has
            // to survive.
            cs.phase = AssocPhase::Dormant;
            cs.ap = None;
            cs.best_probe = None;
            cs.assoc_retries = 0;
            t
        };
        let ap_entity = self.stations[target].entity;
        let (ap_pos, ap_chan) = {
            let e = self.medium.entity(ap_entity);
            (e.pos, e.channel)
        };
        let b = self.medium.building();
        let mut pos = ap_pos;
        pos.x = (pos.x + 2.0 + f64::from(sid.0 % 4) * 1.5).clamp(1.0, b.width_m - 1.0);
        pos.y = (pos.y + 1.5).clamp(1.0, b.depth_m - 1.0);
        self.move_station(sid, pos, Some(ap_chan));
        let active = self.stations[sid.index()]
            .role
            .as_client()
            .map(|c| c.session_active)
            .unwrap_or(false);
        if active {
            self.begin_scan(sid);
        }
        self.queue.schedule(
            now + dwell_us.max(50_000),
            EventKind::ClientRoam {
                station: sid,
                dwell_us,
            },
        );
    }

    /// An AP is re-allocated to `channel`: it drops every association and
    /// retunes; its (former) clients are told to follow with staggered
    /// [`EventKind::ClientRetune`] events, after which they rescan.
    pub(crate) fn on_channel_realloc(&mut self, sid: StationId, channel: u8) {
        let now = self.now;
        if self.stations[sid.index()].mac.radio_busy {
            self.queue.schedule(
                now + 1_500,
                EventKind::ChannelRealloc {
                    station: sid,
                    channel,
                },
            );
            return;
        }
        let members = {
            let ap = match self.stations[sid.index()].role.as_ap_mut() {
                Some(a) => a,
                None => return,
            };
            let mut m: Vec<_> = ap.clients.keys().copied().collect();
            // HashMap order is not deterministic; the stagger below must be.
            m.sort_by_key(|a| *a.bytes());
            ap.clients.clear();
            m
        };
        self.retune_station(sid, Channel::of(channel));
        for (k, addr) in members.into_iter().enumerate() {
            self.wired.forget_client(addr);
            if let Some(&csid) = self.addr_to_station.get(&addr) {
                self.queue.schedule(
                    now + 5_000 + 7_000 * k as u64,
                    EventKind::ClientRetune {
                        station: csid,
                        channel,
                    },
                );
            }
        }
    }

    /// A client follows its AP's channel re-allocation.
    pub(crate) fn on_client_retune(&mut self, sid: StationId, channel: u8) {
        let now = self.now;
        if self.stations[sid.index()].mac.radio_busy {
            self.queue.schedule(
                now + 2_000,
                EventKind::ClientRetune {
                    station: sid,
                    channel,
                },
            );
            return;
        }
        let active = {
            let cs = match self.stations[sid.index()].role.as_client_mut() {
                Some(c) => c,
                None => return,
            };
            cs.phase = AssocPhase::Dormant;
            cs.ap = None;
            cs.best_probe = None;
            cs.assoc_retries = 0;
            cs.session_active
        };
        self.retune_station(sid, Channel::of(channel));
        if active {
            self.begin_scan(sid);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::scenario::ScenarioConfig;
    use crate::station::AssocPhase;
    use crate::StationId;
    use jigsaw_ieee80211::Channel;

    #[test]
    fn retune_updates_medium_and_audibility() {
        let mut w = ScenarioConfig::tiny(5).build();
        let client = StationId(1);
        let entity = w.stations[client.index()].entity;
        let before = w.medium.entity(entity).channel;
        let target = Channel::of(if before.number() == 11 { 1 } else { 11 });
        w.retune_station(client, target);
        assert_eq!(w.medium.entity(entity).channel, target);
        // The client's own transmit list was rebuilt on the new channel:
        // stored powers must match a fresh medium query.
        for &(rx, p) in &w.audible_radios[entity as usize] {
            assert_eq!(p, w.medium.rx_power_ddbm(entity, rx, target));
        }
    }

    #[test]
    fn relocate_is_deterministic() {
        let probe = |seed: u64| {
            let mut w = ScenarioConfig::tiny(seed).build();
            let sid = StationId(1);
            let entity = w.stations[sid.index()].entity;
            let b = w.medium.building();
            let pos = b.at(1, b.width_m / 2.0, b.depth_m / 2.0);
            w.move_station(sid, pos, None);
            (0..w.medium.entity_count() as u32)
                .filter(|&j| j != entity)
                .map(|j| w.medium.gain_ddb(entity, j))
                .collect::<Vec<_>>()
        };
        assert_eq!(probe(9), probe(9));
    }

    #[test]
    fn refresh_keeps_lists_sorted() {
        let mut w = ScenarioConfig::small(2).build();
        let sid = StationId((w.cfg.n_aps + w.cfg.n_external_aps) as u16);
        let b = w.medium.building();
        let pos = b.at(3, 5.0, 5.0);
        w.move_station(sid, pos, Some(Channel::of(11)));
        for list in &w.audible_stations {
            assert!(list.windows(2).all(|p| p[0].0 < p[1].0), "unsorted sids");
        }
        for list in &w.audible_radios {
            assert!(list.windows(2).all(|p| p[0].0 < p[1].0), "unsorted radios");
        }
    }

    #[test]
    fn roam_event_moves_client_and_rescans() {
        let mut w = ScenarioConfig::tiny(3).build();
        let client = StationId(1);
        // Activate the session directly, then roam.
        w.stations[client.index()]
            .role
            .as_client_mut()
            .unwrap()
            .session_active = true;
        let before = w.medium.entity(w.stations[client.index()].entity).pos;
        w.on_client_roam(client, 1_000_000);
        let st = &w.stations[client.index()];
        let after = w.medium.entity(st.entity).pos;
        assert!(before.distance(&after) > 0.1, "client did not move");
        let cs = st.role.as_client().unwrap();
        assert_eq!(cs.phase, AssocPhase::Probing);
        assert_eq!(cs.roam_count, 1);
    }

    #[test]
    fn realloc_retunes_ap_and_clears_clients() {
        let mut w = ScenarioConfig::tiny(4).build();
        let ap = StationId(0);
        w.on_channel_realloc(ap, 11);
        assert_eq!(
            w.medium.entity(w.stations[ap.index()].entity).channel,
            Channel::of(11)
        );
        assert!(w.stations[ap.index()]
            .role
            .as_ap()
            .unwrap()
            .clients
            .is_empty());
    }

    #[test]
    fn sensing_balanced_across_mid_flight_retune() {
        // Run a busy scenario with a mid-run retune of every client and
        // check no station is left stuck "sensing" at the end.
        let mut w = ScenarioConfig::tiny(6).build();
        let horizon = w.cfg.day_us;
        use crate::event::EventKind;
        let n_stations = w.stations.len();
        for i in 0..n_stations {
            if w.stations[i].role.as_client().is_some() {
                w.queue.schedule(
                    horizon / 2 + 10_000 * i as u64,
                    EventKind::ClientRetune {
                        station: StationId(i as u16),
                        channel: 6,
                    },
                );
            }
        }
        // Drain the queue manually so we can inspect final MAC state.
        while let Some((t, ev)) = w.queue.pop() {
            if t > horizon {
                break;
            }
            w.now = t;
            w.dispatch(ev);
        }
        assert_eq!(w.medium.active_count(), 0, "transmissions left in flight");
        for s in &w.stations {
            assert_eq!(s.mac.sensed, 0, "station {:?} stuck busy", s.id);
        }
    }
}
