//! Everything above the MAC: frame-level station behaviour (association,
//! beacons, ARP, bridging), the wired network, TCP flows, workloads,
//! the Vernier-style ARP scanner, office broadcasters and microwave noise.

use super::{TxTag, World};
use crate::event::{EventKind, MacTimerKind};
use crate::mac::{Mpdu, MpduKind, SifsAction};
use crate::medium::TxDesc;
use crate::output::TruthRecord;
use crate::station::{AssocInfo, AssocPhase};
use crate::tcp::{TcpEndpoint, TcpOutput};
use crate::traffic::{self, Activity, Flow, FlowKind};
use crate::wired::{WiredDirection, WiredDst, WiredPacket, WiredTraceRecord};
use crate::{HostId, StationId};
use jigsaw_ieee80211::frame::{DataFrame, Frame, MgmtBody, MgmtHeader};
use jigsaw_ieee80211::ie;
use jigsaw_ieee80211::timing::{response_rate, SIFS_US};
use jigsaw_ieee80211::{MacAddr, Micros, PhyRate};
use jigsaw_packet::{ArpOp, ArpPacket, Ipv4Packet, Msdu, TcpSegment, UdpDatagram};
use rand::Rng;

/// Switch forwarding latency for wired broadcast fan-out, µs.
const SWITCH_LATENCY_US: Micros = 150;

/// Flows older than this get force-closed by the watchdog.
const FLOW_TIMEOUT_US: Micros = 30_000_000;

impl World {
    // ------------------------------------------------------------------
    // Enqueue helpers
    // ------------------------------------------------------------------

    /// Queues an MSDU-bearing data frame at a station.
    pub(crate) fn enqueue_msdu(
        &mut self,
        sid: StationId,
        addr1: MacAddr,
        addr3: MacAddr,
        to_ds: bool,
        from_ds: bool,
        bytes: Vec<u8>,
    ) {
        let now = self.now;
        let sender = self.stations[sid.index()].mac.addr;
        let xid = if addr1.is_unicast() {
            self.new_exchange(sender, addr1)
        } else {
            u64::MAX
        };
        self.mac_enqueue(
            sid,
            Mpdu {
                dst: addr1,
                kind: MpduKind::Msdu {
                    bytes,
                    addr3,
                    to_ds,
                    from_ds,
                },
                retries: 0,
                seq: None,
                enqueued_at: now,
                truth_xid: xid,
            },
        );
    }

    /// Queues a management frame at a station.
    pub(crate) fn enqueue_mgmt(&mut self, sid: StationId, dst: MacAddr, body: MgmtBody) {
        let now = self.now;
        let sender = self.stations[sid.index()].mac.addr;
        let xid = if dst.is_unicast() {
            self.new_exchange(sender, dst)
        } else {
            u64::MAX
        };
        self.mac_enqueue(
            sid,
            Mpdu {
                dst,
                kind: MpduKind::Mgmt(body),
                retries: 0,
                seq: None,
                enqueued_at: now,
                truth_xid: xid,
            },
        );
    }

    // ------------------------------------------------------------------
    // Frame reception (upper half)
    // ------------------------------------------------------------------

    /// A station decoded `frame` (FCS-valid) at `rx_power`.
    pub(crate) fn station_rx_frame(
        &mut self,
        sid: StationId,
        frame: Frame,
        rx_power: i32,
        rx_rate: PhyRate,
    ) {
        let now = self.now;
        let my = self.stations[sid.index()].mac.addr;
        let rcv = frame.receiver();

        // Virtual carrier sense: honour the Duration field of frames not
        // addressed to us.
        if rcv != my && frame.duration() > 0 {
            let mac = &mut self.stations[sid.index()].mac;
            mac.nav_until = mac.nav_until.max(now + Micros::from(frame.duration()));
        }
        if rcv == my {
            self.stations[sid.index()].rx_frames += 1;
        }

        match &frame {
            Frame::Ack { ra, .. } => {
                if *ra == my {
                    self.on_ack_received(sid);
                }
                return;
            }
            Frame::Cts { .. } | Frame::Rts { .. } => return,
            _ => {}
        }

        // Unicast data/management to us ⇒ SIFS-spaced ACK.
        if rcv == my {
            if let Some(ta) = frame.transmitter() {
                let mac = &mut self.stations[sid.index()].mac;
                if mac.sifs_action.is_none() {
                    mac.sifs_action = Some(SifsAction::SendAck {
                        to: ta,
                        rate: response_rate(rx_rate),
                    });
                    let gen = mac.bump_resp();
                    self.queue.schedule(
                        now + SIFS_US,
                        EventKind::MacTimer {
                            station: sid,
                            gen,
                            kind: MacTimerKind::SifsAction,
                        },
                    );
                }
            }
        }

        let is_ap = self.stations[sid.index()].is_ap();
        match frame {
            Frame::Data(d) => {
                if is_ap {
                    self.ap_handle_data(sid, d);
                } else {
                    self.client_handle_data(sid, d);
                }
            }
            Frame::Mgmt { header, body } => {
                if is_ap {
                    self.ap_handle_mgmt(sid, header, body);
                } else {
                    self.client_handle_mgmt(sid, header, body, rx_power);
                }
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // AP behaviour
    // ------------------------------------------------------------------

    fn ap_handle_data(&mut self, sid: StationId, d: DataFrame) {
        let now = self.now;
        let my = self.stations[sid.index()].mac.addr;
        if !d.flags.to_ds || d.addr1 != my || d.null {
            return;
        }
        let src = d.addr2;
        let final_dst = d.addr3;

        // Keep protection alive while associated b-only clients are active.
        {
            let st = &mut self.stations[sid.index()];
            if let Some(ap) = st.role.as_ap_mut() {
                if ap.clients.get(&src).map(|c| c.b_only).unwrap_or(false) {
                    ap.saw_b_client(now);
                    st.mac.protection = true;
                }
            }
        }

        let msdu = match Msdu::parse(&d.body) {
            Ok(m) => m,
            Err(_) => return,
        };
        self.wired_trace.push(WiredTraceRecord {
            ts: now,
            src_mac: src,
            dst_mac: final_dst,
            ap: Some(sid),
            direction: WiredDirection::FromWireless,
            msdu: msdu.clone(),
        });

        if final_dst.is_multicast() {
            // Flood to every other internal AP (they rebroadcast on the air)…
            let ap_ids: Vec<StationId> = self
                .stations
                .iter()
                .filter(|s| {
                    matches!(&s.role, crate::station::Role::Ap(a) if !a.external) && s.id != sid
                })
                .map(|s| s.id)
                .collect();
            for ap2 in ap_ids {
                let jitter = self.rng.gen_range(0..200);
                let h = self.wired.launch(WiredPacket {
                    src_mac: src,
                    dst_mac: final_dst,
                    msdu: msdu.clone(),
                    dst: WiredDst::Ap(ap2),
                });
                self.queue.schedule(
                    now + SWITCH_LATENCY_US + jitter,
                    EventKind::WiredArrival { handle: h },
                );
            }
            // …and answer ARP requests aimed at wired hosts.
            if let Msdu::Arp(a) = &msdu {
                if a.op == ArpOp::Request {
                    if let Some(&hid) = self.wired.host_by_ip.get(&a.target_ip) {
                        self.host_send_arp_reply(hid, *a);
                    }
                }
            }
        } else if let Some(&hid) = self.wired.host_by_mac.get(&final_dst) {
            let host = self.wired.host(hid).clone();
            if self.rng.gen_bool(host.loss_prob.clamp(0.0, 1.0)) {
                self.stats.wired_losses += 1;
            } else {
                let h = self.wired.launch(WiredPacket {
                    src_mac: src,
                    dst_mac: final_dst,
                    msdu,
                    dst: WiredDst::Host(hid),
                });
                self.queue
                    .schedule(now + host.latency_us, EventKind::WiredArrival { handle: h });
            }
        } else if let Some(&ap2) = self.wired.client_ap.get(&final_dst) {
            let h = self.wired.launch(WiredPacket {
                src_mac: src,
                dst_mac: final_dst,
                msdu,
                dst: WiredDst::Ap(ap2),
            });
            self.queue.schedule(
                now + SWITCH_LATENCY_US,
                EventKind::WiredArrival { handle: h },
            );
        }
    }

    fn ap_handle_mgmt(&mut self, sid: StationId, header: MgmtHeader, body: MgmtBody) {
        let now = self.now;
        let my = self.stations[sid.index()].mac.addr;
        match body {
            MgmtBody::ProbeReq { ies } => {
                // Note 802.11b-only stations in range (protection trigger).
                let b_only = !ie::rates_include_ofdm(&ies);
                {
                    let st = &mut self.stations[sid.index()];
                    if let Some(ap) = st.role.as_ap_mut() {
                        if b_only {
                            ap.saw_b_client(now);
                            st.mac.protection = true;
                        }
                    }
                }
                let (ssid, channel, protection) = {
                    let st = &self.stations[sid.index()];
                    let ap = st.role.as_ap().expect("ap role");
                    (
                        ap.ssid.clone(),
                        self.medium.entity(st.entity).channel.number(),
                        ap.protection_on,
                    )
                };
                let resp = crate::frames::probe_resp(
                    my,
                    header.sa,
                    &ssid,
                    channel,
                    protection,
                    now,
                    jigsaw_ieee80211::SeqNum::new(0),
                );
                self.enqueue_mgmt(sid, header.sa, resp);
            }
            MgmtBody::Auth { auth_seq: 1, .. } if header.da == my => {
                self.enqueue_mgmt(sid, header.sa, crate::frames::auth(2));
            }
            MgmtBody::AssocReq { ies, .. } | MgmtBody::ReassocReq { ies, .. } => {
                if header.da != my {
                    return;
                }
                let b_only = !ie::rates_include_ofdm(&ies);
                let aid = {
                    let st = &mut self.stations[sid.index()];
                    let ap = st.role.as_ap_mut().expect("ap role");
                    let aid = ap.next_aid;
                    ap.next_aid += 1;
                    ap.clients.insert(
                        header.sa,
                        AssocInfo {
                            aid,
                            b_only,
                            since: now,
                        },
                    );
                    if b_only {
                        ap.saw_b_client(now);
                    }
                    let protection = ap.protection_on;
                    st.mac.protection = protection;
                    st.mac
                        .peer_cap
                        .insert(header.sa, if b_only { PhyRate::R11 } else { PhyRate::R54 });
                    aid
                };
                self.wired.learn_client(header.sa, sid);
                self.enqueue_mgmt(sid, header.sa, crate::frames::assoc_resp(aid));
            }
            MgmtBody::Disassoc { .. } | MgmtBody::Deauth { .. } if header.da == my => {
                let st = &mut self.stations[sid.index()];
                if let Some(ap) = st.role.as_ap_mut() {
                    ap.clients.remove(&header.sa);
                }
                self.wired.forget_client(header.sa);
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Client behaviour
    // ------------------------------------------------------------------

    fn client_handle_data(&mut self, sid: StationId, d: DataFrame) {
        if !d.flags.from_ds || d.null {
            return;
        }
        let my = self.stations[sid.index()].mac.addr;
        if d.addr1 != my && !d.addr1.is_multicast() {
            return;
        }
        let msdu = match Msdu::parse(&d.body) {
            Ok(m) => m,
            Err(_) => return,
        };
        match msdu {
            Msdu::Arp(a) => {
                let my_ip = self.stations[sid.index()].ip;
                if a.op == ArpOp::Request && a.target_ip == my_ip {
                    let reply = ArpPacket::reply_to(&a, *my.bytes());
                    let bytes = Msdu::Arp(reply).to_bytes();
                    let ap_addr = self.client_ap_addr(sid);
                    if let Some(ap_addr) = ap_addr {
                        self.enqueue_msdu(sid, ap_addr, MacAddr(a.sender_mac), true, false, bytes);
                    }
                }
            }
            Msdu::Ipv4(ip) => {
                if let jigsaw_packet::ipv4::IpPayload::Tcp(seg) = ip.payload {
                    self.client_tcp_input(sid, seg);
                }
            }
            Msdu::Other { .. } => {}
        }
    }

    /// The serving AP's MAC address, if associated.
    fn client_ap_addr(&self, sid: StationId) -> Option<MacAddr> {
        let cs = self.stations[sid.index()].role.as_client()?;
        if cs.phase != AssocPhase::Associated {
            return None;
        }
        cs.ap.map(|ap| self.stations[ap.index()].mac.addr)
    }

    fn client_tcp_input(&mut self, sid: StationId, seg: TcpSegment) {
        let now = self.now;
        let fid = match self.flow_by_client_port.get(&(sid, seg.dst_port)) {
            Some(&f) => f,
            None => return,
        };
        let before = self.flows[fid as usize].client_end.rcv_nxt;
        let out = self.flows[fid as usize].client_end.on_segment(&seg, now);
        let advanced = self.flows[fid as usize].client_end.rcv_nxt != before;
        self.route_client_segments(fid, out);

        // Interactive ssh: count a response, schedule the next keystroke.
        if advanced && self.flows[fid as usize].kind == FlowKind::Ssh {
            let left = self.flows[fid as usize].exchanges_left;
            if left > 1 {
                self.flows[fid as usize].exchanges_left = left - 1;
                let gap = traffic::ssh_gap(&mut self.rng, &self.params);
                self.queue
                    .schedule(now + gap, EventKind::SshKeystroke { flow: fid });
            } else if left == 1 {
                self.flows[fid as usize].exchanges_left = 0;
                let out = self.flows[fid as usize].client_end.shutdown(now);
                self.route_client_segments(fid, out);
            }
        }
        self.pump_flow(fid);
    }

    fn client_handle_mgmt(
        &mut self,
        sid: StationId,
        header: MgmtHeader,
        body: MgmtBody,
        rx_power: i32,
    ) {
        let now = self.now;
        let my = self.stations[sid.index()].mac.addr;
        match body {
            MgmtBody::Beacon { ies, .. } => {
                let serving = self.client_ap_addr(sid);
                if serving == Some(header.sa) {
                    let protection = ie::find_erp(&ies)
                        .map(|f| f & ie::erp::USE_PROTECTION != 0)
                        .unwrap_or(false);
                    let st = &mut self.stations[sid.index()];
                    let b_only = st.mac.b_only;
                    if let Some(cs) = st.role.as_client_mut() {
                        cs.ap_protection = protection;
                    }
                    st.mac.protection = protection && !b_only;
                }
            }
            MgmtBody::ProbeResp { .. } => {
                if header.da != my {
                    return;
                }
                let ap_sid = match self.addr_to_station.get(&header.sa) {
                    Some(&s) => s,
                    None => return,
                };
                let st = &mut self.stations[sid.index()];
                if let Some(cs) = st.role.as_client_mut() {
                    if cs.phase == AssocPhase::Probing {
                        let better = match cs.best_probe {
                            Some((_, _, p)) => rx_power > p,
                            None => true,
                        };
                        if better {
                            cs.best_probe = Some((ap_sid, header.sa, rx_power));
                        }
                    }
                }
            }
            MgmtBody::Auth {
                auth_seq: 2,
                status: 0,
                ..
            } => {
                if header.da != my {
                    return;
                }
                let target = {
                    let cs = self.stations[sid.index()].role.as_client().unwrap();
                    if cs.phase != AssocPhase::Authenticating {
                        return;
                    }
                    cs.best_probe
                };
                if let Some((_, ap_addr, _)) = target {
                    if ap_addr == header.sa {
                        let b_only = self.stations[sid.index()].mac.b_only;
                        {
                            let cs = self.stations[sid.index()].role.as_client_mut().unwrap();
                            cs.phase = AssocPhase::Associating;
                            cs.assoc_retries = 0;
                        }
                        self.enqueue_mgmt(sid, ap_addr, crate::frames::assoc_req(b_only));
                        self.schedule_app(sid, 200_000);
                    }
                }
            }
            MgmtBody::AssocResp { status: 0, .. } => {
                if header.da != my {
                    return;
                }
                let (ap_sid, ap_addr) = {
                    let cs = self.stations[sid.index()].role.as_client().unwrap();
                    if cs.phase != AssocPhase::Associating {
                        return;
                    }
                    match cs.best_probe {
                        Some((s, a, _)) if a == header.sa => (s, a),
                        _ => return,
                    }
                };
                {
                    let st = &mut self.stations[sid.index()];
                    st.mac.peer_cap.insert(ap_addr, PhyRate::R54);
                    let cs = st.role.as_client_mut().unwrap();
                    cs.phase = AssocPhase::Associated;
                    cs.ap = Some(ap_sid);
                }
                // Register with the management server and announce ourselves.
                let ip = self.stations[sid.index()].ip;
                if !self.stations[sid.index()].registered_with_vernier {
                    self.stations[sid.index()].registered_with_vernier = true;
                    self.vernier_registry.push((ip, my));
                }
                let gratuitous = ArpPacket::who_has(*my.bytes(), ip, ip);
                let bytes = Msdu::Arp(gratuitous).to_bytes();
                self.enqueue_msdu(sid, ap_addr, MacAddr::BROADCAST, true, false, bytes);
                self.schedule_app(sid, 50_000);
                let _ = now;
            }
            MgmtBody::Deauth { .. } | MgmtBody::Disassoc { .. } => {
                if header.da != my {
                    return;
                }
                let active = {
                    let cs = self.stations[sid.index()].role.as_client_mut().unwrap();
                    cs.phase = AssocPhase::Dormant;
                    cs.ap = None;
                    cs.session_active
                };
                if active {
                    self.begin_scan(sid);
                }
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Wired side
    // ------------------------------------------------------------------

    pub(crate) fn on_wired_arrival(&mut self, handle: u64) {
        let pkt = self.wired.arrive(handle);
        match pkt.dst {
            WiredDst::Host(h) => self.host_rx(h, pkt),
            WiredDst::Ap(ap_sid) => {
                let my = self.stations[ap_sid.index()].mac.addr;
                if pkt.dst_mac.is_multicast() {
                    let bytes = pkt.msdu.to_bytes();
                    self.enqueue_msdu(ap_sid, pkt.dst_mac, pkt.src_mac, false, true, bytes);
                } else {
                    let in_bss = self.stations[ap_sid.index()]
                        .role
                        .as_ap()
                        .map(|a| a.clients.contains_key(&pkt.dst_mac))
                        .unwrap_or(false);
                    if in_bss {
                        let bytes = pkt.msdu.to_bytes();
                        self.enqueue_msdu(ap_sid, pkt.dst_mac, pkt.src_mac, false, true, bytes);
                    }
                }
                let _ = my;
            }
        }
    }

    fn host_send_arp_reply(&mut self, hid: HostId, req: ArpPacket) {
        let now = self.now;
        let host = self.wired.host(hid).clone();
        let reply = ArpPacket::reply_to(&req, *MacAddr(host.mac.0).bytes());
        let requester = MacAddr(req.sender_mac);
        let ap = match self.wired.client_ap.get(&requester) {
            Some(&a) => a,
            None => return,
        };
        let msdu = Msdu::Arp(reply);
        let arrive = now + host.latency_us;
        self.wired_trace.push(WiredTraceRecord {
            ts: arrive,
            src_mac: host.mac,
            dst_mac: requester,
            ap: Some(ap),
            direction: WiredDirection::ToWireless,
            msdu: msdu.clone(),
        });
        let h = self.wired.launch(WiredPacket {
            src_mac: host.mac,
            dst_mac: requester,
            msdu,
            dst: WiredDst::Ap(ap),
        });
        self.queue
            .schedule(arrive, EventKind::WiredArrival { handle: h });
    }

    fn host_rx(&mut self, hid: HostId, pkt: WiredPacket) {
        let now = self.now;
        match pkt.msdu {
            Msdu::Ipv4(ip) => {
                if let jigsaw_packet::ipv4::IpPayload::Tcp(seg) = ip.payload {
                    let client_sid = match self.ip_to_station.get(&ip.src) {
                        Some(&s) => s,
                        None => return,
                    };
                    let fid = match self.flow_by_client_port.get(&(client_sid, seg.src_port)) {
                        Some(&f) => f,
                        None => return,
                    };
                    let before = self.flows[fid as usize].host_end.rcv_nxt;
                    let out = self.flows[fid as usize].host_end.on_segment(&seg, now);
                    let advanced = self.flows[fid as usize].host_end.rcv_nxt != before;
                    self.route_host_segments(fid, out);
                    if advanced && self.flows[fid as usize].kind == FlowKind::Ssh {
                        let service = self.rng.gen_range(5_000..20_000);
                        self.queue.schedule(
                            now + service,
                            EventKind::HostApp {
                                host: hid,
                                flow: fid,
                            },
                        );
                    }
                    self.pump_flow(fid);
                }
            }
            Msdu::Arp(a) => {
                let host_ip = self.wired.host(hid).ip;
                if a.op == ArpOp::Request && a.target_ip == host_ip {
                    self.host_send_arp_reply(hid, a);
                }
            }
            Msdu::Other { .. } => {}
        }
    }

    pub(crate) fn on_host_app(&mut self, _hid: HostId, fid: u32) {
        let now = self.now;
        let f = &mut self.flows[fid as usize];
        if f.completed || f.kind != FlowKind::Ssh {
            return;
        }
        let resp: u64 = self.rng.gen_range(200..2000);
        let out = f.host_end.app_write(resp, now);
        self.route_host_segments(fid, out);
        self.pump_flow(fid);
    }

    pub(crate) fn on_ssh_keystroke(&mut self, fid: u32) {
        let now = self.now;
        if self.flows[fid as usize].completed {
            return;
        }
        let client = self.flows[fid as usize].client;
        if self.client_ap_addr(client).is_none() {
            return;
        }
        let bytes: u64 = self.rng.gen_range(50..300);
        let out = self.flows[fid as usize].client_end.app_write(bytes, now);
        self.route_client_segments(fid, out);
        self.pump_flow(fid);
    }

    // ------------------------------------------------------------------
    // Segment routing
    // ------------------------------------------------------------------

    fn route_client_segments(&mut self, fid: u32, out: TcpOutput) {
        let now = self.now;
        let (client_sid, host_id) = {
            let f = &self.flows[fid as usize];
            (f.client, f.host)
        };
        let ap_addr = match self.client_ap_addr(client_sid) {
            Some(a) => a,
            None => return, // not associated: segments evaporate
        };
        let client_ip = self.stations[client_sid.index()].ip;
        let host = self.wired.host(host_id).clone();
        let segments = out.segments;
        for seg in segments {
            let ip = Ipv4Packet::tcp(client_ip, host.ip, seg);
            let bytes = Msdu::Ipv4(ip).to_bytes();
            self.enqueue_msdu(client_sid, ap_addr, host.mac, true, false, bytes);
        }
        if let Some(deadline) = out.arm_timer {
            let gen = self.flows[fid as usize].client_end.timer_gen;
            self.queue.schedule(
                deadline.max(now),
                EventKind::TcpTimer { flow: fid * 2, gen },
            );
        }
    }

    fn route_host_segments(&mut self, fid: u32, out: TcpOutput) {
        let now = self.now;
        let (client_sid, host_id) = {
            let f = &self.flows[fid as usize];
            (f.client, f.host)
        };
        let client_addr = self.stations[client_sid.index()].mac.addr;
        let client_ip = self.stations[client_sid.index()].ip;
        let host = self.wired.host(host_id).clone();
        for seg in out.segments {
            if self.rng.gen_bool(host.loss_prob.clamp(0.0, 1.0)) {
                self.stats.wired_losses += 1;
                continue;
            }
            let ap = match self.wired.client_ap.get(&client_addr) {
                Some(&a) => a,
                None => continue,
            };
            let ip = Ipv4Packet::tcp(host.ip, client_ip, seg);
            let msdu = Msdu::Ipv4(ip);
            let arrive = now + host.latency_us + self.rng.gen_range(0..200);
            self.wired_trace.push(WiredTraceRecord {
                ts: arrive,
                src_mac: host.mac,
                dst_mac: client_addr,
                ap: Some(ap),
                direction: WiredDirection::ToWireless,
                msdu: msdu.clone(),
            });
            let h = self.wired.launch(WiredPacket {
                src_mac: host.mac,
                dst_mac: client_addr,
                msdu,
                dst: WiredDst::Ap(ap),
            });
            self.queue
                .schedule(arrive, EventKind::WiredArrival { handle: h });
        }
        if let Some(deadline) = out.arm_timer {
            let gen = self.flows[fid as usize].host_end.timer_gen;
            self.queue.schedule(
                deadline.max(now),
                EventKind::TcpTimer {
                    flow: fid * 2 + 1,
                    gen,
                },
            );
        }
    }

    /// Generic close progression + completion accounting for a flow.
    fn pump_flow(&mut self, fid: u32) {
        let now = self.now;
        // Client side follows the peer's FIN.
        let needs_client_close = {
            let e = &self.flows[fid as usize].client_end;
            e.peer_fin_seen && !e.close_when_done && e.app_remaining == 0
        };
        if needs_client_close {
            let out = self.flows[fid as usize].client_end.shutdown(now);
            self.route_client_segments(fid, out);
        }
        let needs_host_close = {
            let e = &self.flows[fid as usize].host_end;
            e.peer_fin_seen && !e.close_when_done && e.app_remaining == 0
        };
        if needs_host_close {
            let out = self.flows[fid as usize].host_end.shutdown(now);
            self.route_host_segments(fid, out);
        }
        let done = {
            let f = &self.flows[fid as usize];
            !f.completed && f.client_end.is_done() && f.host_end.is_done()
        };
        if done {
            self.complete_flow(fid);
        }
    }

    fn complete_flow(&mut self, fid: u32) {
        let now = self.now;
        let client = {
            let f = &mut self.flows[fid as usize];
            f.completed = true;
            f.client
        };
        let idle = {
            let st = &mut self.stations[client.index()];
            if let Some(cs) = st.role.as_client_mut() {
                cs.active_flows.retain(|&x| x != fid);
                cs.session_active
                    && cs.phase == AssocPhase::Associated
                    && cs.active_flows.is_empty()
            } else {
                false
            }
        };
        if idle {
            let think = traffic::think_time(&mut self.rng, &self.params);
            self.schedule_app(client, think);
            let _ = now;
        }
    }

    pub(crate) fn on_tcp_timer(&mut self, enc: u32, gen: u32) {
        let now = self.now;
        let fid = enc / 2;
        let client_side = enc.is_multiple_of(2);
        if self.flows[fid as usize].completed {
            return;
        }
        let valid = {
            let f = &self.flows[fid as usize];
            let e = if client_side {
                &f.client_end
            } else {
                &f.host_end
            };
            e.timer_gen == gen && !e.is_done()
        };
        if !valid {
            return;
        }
        let out = {
            let f = &mut self.flows[fid as usize];
            if client_side {
                f.client_end.on_rto(now)
            } else {
                f.host_end.on_rto(now)
            }
        };
        if client_side {
            self.route_client_segments(fid, out);
        } else {
            self.route_host_segments(fid, out);
        }
        self.pump_flow(fid);
    }

    // ------------------------------------------------------------------
    // Flows & workload
    // ------------------------------------------------------------------

    fn start_flow(&mut self, client: StationId, kind: FlowKind) {
        let now = self.now;
        let (n_lan, n_inet) = (self.cfg.lan_hosts, self.cfg.internet_hosts);
        let host_idx = match kind {
            FlowKind::Web | FlowKind::Background => {
                if n_inet == 0 {
                    0
                } else {
                    n_lan + self.rng.gen_range(0..n_inet)
                }
            }
            FlowKind::Ssh | FlowKind::Scp { .. } => {
                if n_lan == 0 {
                    0
                } else {
                    self.rng.gen_range(0..n_lan)
                }
            }
        };
        let host = HostId(host_idx as u16);
        let cport = self.alloc_port();
        let hport = match kind {
            FlowKind::Web => 80,
            FlowKind::Ssh | FlowKind::Scp { .. } => 22,
            FlowKind::Background => 8080,
        };
        let iss_c: u32 = self.rng.gen();
        let iss_h: u32 = self.rng.gen();
        let mut client_end = TcpEndpoint::new(cport, hport, iss_c, 1460);
        let mut host_end = TcpEndpoint::new(hport, cport, iss_h, 1460);
        let mut exchanges = 0;
        match kind {
            FlowKind::Web => {
                host_end.app_remaining = traffic::web_size(&mut self.rng, &self.params);
                host_end.close_when_done = true;
            }
            FlowKind::Ssh => {
                let (lo, hi) = self.params.ssh_exchanges;
                exchanges = self.rng.gen_range(lo..=hi);
                client_end.app_remaining = 100;
            }
            FlowKind::Scp { upload } => {
                let size = traffic::scp_size(&mut self.rng, &self.params);
                if upload {
                    client_end.app_remaining = size;
                    client_end.close_when_done = true;
                } else {
                    host_end.app_remaining = size;
                    host_end.close_when_done = true;
                }
            }
            FlowKind::Background => {
                client_end.app_remaining = self.params.background_bytes;
                client_end.close_when_done = true;
            }
        }
        let fid = self.flows.len() as u32;
        let out = client_end.connect(now);
        self.flows.push(Flow {
            id: fid,
            client,
            host,
            client_port: cport,
            host_port: hport,
            kind,
            exchanges_left: exchanges,
            client_end,
            host_end,
            completed: false,
            created_at: now,
        });
        self.flow_by_client_port.insert((client, cport), fid);
        if let Some(cs) = self.stations[client.index()].role.as_client_mut() {
            cs.active_flows.push(fid);
        }
        self.route_client_segments(fid, out);
    }

    /// (Re)schedules this client's single app timer after `delay`.
    pub(crate) fn schedule_app(&mut self, sid: StationId, delay: Micros) {
        let now = self.now;
        let gen = {
            let cs = match self.stations[sid.index()].role.as_client_mut() {
                Some(c) => c,
                None => return,
            };
            cs.app_gen = cs.app_gen.wrapping_add(1);
            cs.app_gen
        };
        self.queue
            .schedule(now + delay, EventKind::AppTimer { station: sid, gen });
    }

    pub(crate) fn begin_scan(&mut self, sid: StationId) {
        let b_only = self.stations[sid.index()].mac.b_only;
        {
            let cs = match self.stations[sid.index()].role.as_client_mut() {
                Some(c) => c,
                None => return,
            };
            cs.phase = AssocPhase::Probing;
            cs.best_probe = None;
        }
        let seq = jigsaw_ieee80211::SeqNum::new(0);
        let probe = crate::frames::probe_req(self.stations[sid.index()].mac.addr, b_only, seq);
        if let Frame::Mgmt { body, .. } = probe {
            self.enqueue_mgmt(sid, MacAddr::BROADCAST, body);
        }
        self.schedule_app(sid, 80_000);
    }

    pub(crate) fn on_app_timer(&mut self, sid: StationId, gen: u32) {
        let now = self.now;
        let phase = {
            let cs = match self.stations[sid.index()].role.as_client() {
                Some(c) => c,
                None => return,
            };
            if cs.app_gen != gen || !cs.session_active {
                return;
            }
            cs.phase
        };
        match phase {
            AssocPhase::Dormant => {}
            AssocPhase::Probing => {
                let best = self.stations[sid.index()]
                    .role
                    .as_client()
                    .unwrap()
                    .best_probe;
                match best {
                    Some((_, ap_addr, _)) => {
                        {
                            let cs = self.stations[sid.index()].role.as_client_mut().unwrap();
                            cs.phase = AssocPhase::Authenticating;
                            cs.assoc_retries = 0;
                        }
                        self.enqueue_mgmt(sid, ap_addr, crate::frames::auth(1));
                        self.schedule_app(sid, 200_000);
                    }
                    None => {
                        // Nothing heard: probe again.
                        self.begin_scan(sid);
                    }
                }
            }
            AssocPhase::Authenticating | AssocPhase::Associating => {
                let (retries, target) = {
                    let cs = self.stations[sid.index()].role.as_client_mut().unwrap();
                    cs.assoc_retries += 1;
                    (cs.assoc_retries, cs.best_probe)
                };
                let target = if retries > 3 { None } else { target };
                if let Some((_, ap_addr, _)) = target {
                    let b_only = self.stations[sid.index()].mac.b_only;
                    let body = if phase == AssocPhase::Authenticating {
                        crate::frames::auth(1)
                    } else {
                        crate::frames::assoc_req(b_only)
                    };
                    self.enqueue_mgmt(sid, ap_addr, body);
                    self.schedule_app(sid, 200_000);
                } else {
                    self.begin_scan(sid);
                }
            }
            AssocPhase::Associated => self.workload_step(sid, now),
        }
    }

    fn workload_step(&mut self, sid: StationId, now: Micros) {
        // Reap stuck flows first.
        let stale: Vec<u32> = {
            let cs = self.stations[sid.index()].role.as_client().unwrap();
            cs.active_flows
                .iter()
                .copied()
                .filter(|&f| {
                    let fl = &self.flows[f as usize];
                    now.saturating_sub(fl.created_at) > FLOW_TIMEOUT_US
                })
                .collect()
        };
        for fid in stale {
            self.force_complete_flow(fid);
        }
        let (busy, class) = {
            let cs = self.stations[sid.index()].role.as_client().unwrap();
            (!cs.active_flows.is_empty(), cs.workload)
        };
        if busy {
            // Watchdog re-check.
            self.schedule_app(sid, 2_000_000);
            return;
        }
        match traffic::pick_activity_for(&mut self.rng, class) {
            Activity::Web { fetches } => {
                for _ in 0..fetches {
                    self.start_flow(sid, FlowKind::Web);
                }
            }
            Activity::Ssh => self.start_flow(sid, FlowKind::Ssh),
            Activity::Scp { upload } => self.start_flow(sid, FlowKind::Scp { upload }),
            Activity::Think => {
                let t = traffic::think_time(&mut self.rng, &self.params);
                self.schedule_app(sid, t);
            }
        }
        // Safety net in case flow completions get lost.
        let has_flows = {
            let cs = self.stations[sid.index()].role.as_client().unwrap();
            !cs.active_flows.is_empty()
        };
        if has_flows {
            self.schedule_app(sid, 5_000_000);
        }
    }

    fn force_complete_flow(&mut self, fid: u32) {
        {
            let f = &mut self.flows[fid as usize];
            f.client_end.state = crate::tcp::TcpState::Done;
            f.host_end.state = crate::tcp::TcpState::Done;
            // Invalidate timers.
            f.client_end.timer_gen = f.client_end.timer_gen.wrapping_add(1);
            f.host_end.timer_gen = f.host_end.timer_gen.wrapping_add(1);
        }
        self.pump_flow(fid);
    }

    // ------------------------------------------------------------------
    // Lifecycle, beacons, protection, broadcasters, noise
    // ------------------------------------------------------------------

    pub(crate) fn on_client_lifecycle(&mut self, sid: StationId, activate: bool) {
        if activate {
            {
                let cs = match self.stations[sid.index()].role.as_client_mut() {
                    Some(c) => c,
                    None => return,
                };
                cs.session_active = true;
            }
            self.begin_scan(sid);
        } else {
            let (associated, flows) = {
                let cs = match self.stations[sid.index()].role.as_client_mut() {
                    Some(c) => c,
                    None => return,
                };
                cs.session_active = false;
                let assoc = cs.phase == AssocPhase::Associated;
                let flows = std::mem::take(&mut cs.active_flows);
                cs.phase = AssocPhase::Dormant;
                cs.app_gen = cs.app_gen.wrapping_add(1);
                (assoc, flows)
            };
            for fid in flows {
                self.force_complete_flow(fid);
            }
            if associated {
                let ap_addr = {
                    let cs = self.stations[sid.index()].role.as_client().unwrap();
                    cs.best_probe.map(|(_, a, _)| a)
                };
                if let Some(ap_addr) = ap_addr {
                    self.enqueue_mgmt(sid, ap_addr, MgmtBody::Disassoc { reason: 8 });
                }
                let cs = self.stations[sid.index()].role.as_client_mut().unwrap();
                cs.ap = None;
            }
        }
    }

    pub(crate) fn on_beacon_timer(&mut self, sid: StationId) {
        let now = self.now;
        let (ssid, channel, protection, backlog) = {
            let st = &self.stations[sid.index()];
            let ap = match st.role.as_ap() {
                Some(a) => a,
                None => return,
            };
            (
                ap.ssid.clone(),
                self.medium.entity(st.entity).channel.number(),
                ap.protection_on,
                st.mac.queue.len(),
            )
        };
        if backlog < crate::mac::QUEUE_LIMIT / 2 {
            let my = self.stations[sid.index()].mac.addr;
            let f = crate::frames::beacon(
                my,
                &ssid,
                channel,
                protection,
                now,
                jigsaw_ieee80211::SeqNum::new(0),
            );
            if let Frame::Mgmt { body, .. } = f {
                self.enqueue_mgmt(sid, MacAddr::BROADCAST, body);
            }
        }
        self.queue.schedule(
            now + self.cfg.beacon_interval_us,
            EventKind::Beacon { station: sid },
        );
    }

    pub(crate) fn on_protection_check(&mut self, sid: StationId) {
        let now = self.now;
        {
            let st = &mut self.stations[sid.index()];
            if let Some(ap) = st.role.as_ap_mut() {
                ap.maybe_expire_protection(now);
                st.mac.protection = ap.protection_on;
            }
        }
        self.queue.schedule(
            now + self.cfg.protection_check_us,
            EventKind::ProtectionCheck { station: sid },
        );
    }

    pub(crate) fn on_vernier_arp(&mut self) {
        let now = self.now;
        if let Some(hid) = self.vernier_host {
            if !self.vernier_registry.is_empty() {
                let (target_ip, _mac) =
                    self.vernier_registry[self.vernier_next % self.vernier_registry.len()];
                self.vernier_next += 1;
                let host = self.wired.host(hid).clone();
                let arp = ArpPacket::who_has(*host.mac.bytes(), host.ip, target_ip);
                let msdu = Msdu::Arp(arp);
                self.wired_trace.push(WiredTraceRecord {
                    ts: now,
                    src_mac: host.mac,
                    dst_mac: MacAddr::BROADCAST,
                    ap: None,
                    direction: WiredDirection::ToWireless,
                    msdu: msdu.clone(),
                });
                let ap_ids: Vec<StationId> = self
                    .stations
                    .iter()
                    .filter(|s| matches!(&s.role, crate::station::Role::Ap(a) if !a.external))
                    .map(|s| s.id)
                    .collect();
                for ap in ap_ids {
                    let jitter = self.rng.gen_range(0..200);
                    let h = self.wired.launch(WiredPacket {
                        src_mac: host.mac,
                        dst_mac: MacAddr::BROADCAST,
                        msdu: msdu.clone(),
                        dst: WiredDst::Ap(ap),
                    });
                    self.queue.schedule(
                        now + SWITCH_LATENCY_US + jitter,
                        EventKind::WiredArrival { handle: h },
                    );
                }
            }
        }
        self.queue
            .schedule(now + self.cfg.vernier_interval_us, EventKind::VernierArp);
    }

    pub(crate) fn on_office_broadcast(&mut self, sid: StationId) {
        let now = self.now;
        let active = {
            let cs = match self.stations[sid.index()].role.as_client() {
                Some(c) => c,
                None => return,
            };
            cs.session_active && cs.phase == AssocPhase::Associated
        };
        if active {
            if let Some(ap_addr) = self.client_ap_addr(sid) {
                let ip = self.stations[sid.index()].ip;
                let udp = UdpDatagram::new(2222, 2222, 120);
                let pkt = Ipv4Packet::udp(ip, std::net::Ipv4Addr::new(255, 255, 255, 255), udp);
                let bytes = Msdu::Ipv4(pkt).to_bytes();
                self.enqueue_msdu(sid, ap_addr, MacAddr::BROADCAST, true, false, bytes);
            }
        }
        self.queue.schedule(
            now + self.cfg.office_broadcast_us,
            EventKind::OfficeBroadcast { station: sid },
        );
    }

    pub(crate) fn on_noise_burst(&mut self, idx: u32) {
        let now = self.now;
        let i = idx as usize;
        if i >= self.interferers.len() {
            return;
        }
        if now < self.interferers[i].session_until {
            if !self.interferers[i].burst_active {
                self.start_noise_tx(i);
            }
            // Magnetron duty cycle: ~8 ms on per 20 ms.
            self.queue
                .schedule(now + 20_000, EventKind::NoiseBurst { entity: idx });
        } else {
            // Schedule the next cooking session.
            let gap = crate::rng::exponential(&mut self.rng, self.cfg.microwave_gap_us as f64)
                .max(1_000_000.0) as Micros;
            let duration = self
                .rng
                .gen_range(self.cfg.microwave_cook_us / 2..=self.cfg.microwave_cook_us.max(2));
            self.interferers[i].session_until = now + gap + duration;
            self.queue
                .schedule(now + gap, EventKind::NoiseBurst { entity: idx });
        }
    }

    fn start_noise_tx(&mut self, i: usize) {
        let now = self.now;
        let entity = self.interferers[i].entity;
        let channel = self.medium.entity(entity).channel;
        let end = now + 8_000;
        let truth_idx = if self.truth_mode == super::TruthMode::Full {
            self.truth.transmissions.push(TruthRecord {
                start: now,
                end,
                plcp_us: 0,
                channel: channel.number(),
                rate: PhyRate::R1,
                subtype: None,
                sender: None,
                receiver: None,
                seq: None,
                retry: false,
                wire_len: 0,
                is_noise: true,
                xid: u64::MAX,
                delivered: None,
                captures: 0,
            });
            self.truth.transmissions.len() - 1
        } else {
            usize::MAX
        };
        let tx_id = self.medium.start_tx(TxDesc {
            entity,
            channel,
            rate: PhyRate::R1,
            start: now,
            end,
            plcp_us: 0,
            frame: None,
            bytes: Vec::new(),
            is_noise: true,
            truth_idx,
        });
        self.tx_tags.insert(
            tx_id,
            TxTag::Noise {
                interferer: i as u16,
            },
        );
        self.queue.schedule(end, EventKind::TxEnd { tx_id });
        self.apply_sensing_start(tx_id, entity, PhyRate::R1, true);
        self.interferers[i].burst_active = true;
        self.stats.noise_bursts += 1;
    }
}
