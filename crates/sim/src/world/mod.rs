//! The world: every entity, the event loop, and the glue between MAC,
//! medium, monitors, wired network, transport and workloads.
//!
//! Implementation is split by concern:
//! * [`mod@self`] — state, constructor plumbing, event dispatch, finalize;
//! * `mac_drive` — DCF state machine driving (backoff, transmit, timers);
//! * `rx` — transmission-end processing: sensing updates, station
//!   delivery, monitor capture;
//! * `net` — everything above the MAC: association, bridging, ARP, TCP,
//!   wired arrivals, workloads, interferers.

mod dynamics;
mod mac_drive;
mod net;
mod rx;

use crate::event::{EventKind, EventQueue};
use crate::medium::Medium;
use crate::monitor::{Monitor, TraceCollector};
use crate::output::{GroundTruth, SimOutput, SimStats, StationInfo, TruthExchange};
use crate::scenario::ScenarioConfig;
use crate::station::{Role, Station};
use crate::traffic::{Flow, WorkloadParams};
use crate::wired::{Wired, WiredTraceRecord};
use crate::{HostId, StationId};
use jigsaw_ieee80211::{MacAddr, Micros, PhyRate};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Which transmissions (if any) are recorded as ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruthMode {
    /// Record nothing (cheapest; used for large figure runs).
    Off,
    /// Record only transmissions to/from one station — the §6 "oracle
    /// laptop" experiment.
    Sample(MacAddr),
    /// Record everything (validation tests).
    Full,
}

/// What an in-flight transmission was, for end-of-transmission routing.
#[derive(Debug, Clone, Copy)]
pub enum TxTag {
    /// A station's head-of-queue transmission.
    Head {
        /// The transmitting station.
        station: StationId,
        /// Which stage of the exchange.
        stage: HeadStage,
        /// Rate used (for the ACK-timeout computation).
        rate: PhyRate,
    },
    /// A station's immediate response (ACK).
    Response {
        /// The responding station.
        station: StationId,
    },
    /// A noise burst.
    Noise {
        /// Index into `World::interferers`.
        interferer: u16,
    },
}

/// Stage of a head-of-queue exchange in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadStage {
    /// The CTS-to-self protection preamble.
    Cts,
    /// The protected (or unprotected) data/management frame.
    Data,
}

/// A microwave-oven style interferer.
#[derive(Debug, Clone)]
pub struct InterfererState {
    /// Medium entity.
    pub entity: u32,
    /// End of the current cooking session (0 = not cooking).
    pub session_until: Micros,
    /// Whether a burst is on the air right now.
    pub burst_active: bool,
}

/// The complete simulation state.
pub struct World {
    /// Scenario parameters.
    pub cfg: ScenarioConfig,
    /// Workload parameters (derived from cfg).
    pub params: WorkloadParams,
    /// Current true time, µs.
    pub now: Micros,
    /// Event queue.
    pub queue: EventQueue,
    /// The radio medium.
    pub medium: Medium,
    /// All stations (APs first, then clients).
    pub stations: Vec<Station>,
    /// All monitors (2 radios each).
    pub monitors: Vec<Monitor>,
    /// Per-radio capture collectors (indexed by RadioId).
    pub collectors: Vec<TraceCollector>,
    /// The wired network.
    pub wired: Wired,
    /// The wired distribution-network trace.
    pub wired_trace: Vec<WiredTraceRecord>,
    /// All TCP flows ever created.
    pub flows: Vec<Flow>,
    /// Ground truth (subject to `truth_mode`).
    pub truth: GroundTruth,
    /// Truth recording mode.
    pub truth_mode: TruthMode,
    /// Aggregate counters.
    pub stats: SimStats,
    /// Deterministic RNG.
    pub rng: ChaCha8Rng,

    /// MAC address → station.
    pub addr_to_station: HashMap<MacAddr, StationId>,
    /// IP → station (clients).
    pub ip_to_station: HashMap<Ipv4Addr, StationId>,
    /// Medium entity → station.
    pub entity_station: Vec<Option<StationId>>,
    /// Medium entity → (monitor index, radio slot).
    pub entity_monitor_radio: Vec<Option<(u16, u8)>>,
    /// Flow lookup by (client, client port).
    pub flow_by_client_port: HashMap<(StationId, u16), u32>,

    /// Per tx-entity: stations that can possibly sense/receive it
    /// (co/adjacent-channel rx power, deci-dBm).
    pub audible_stations: Vec<Vec<(StationId, i32)>>,
    /// Per tx-entity: monitor radios that can possibly capture it.
    pub audible_radios: Vec<Vec<(u32, i32)>>,

    /// In-flight transmission routing.
    pub tx_tags: HashMap<u64, TxTag>,
    /// Per in-flight transmission: exactly the stations whose carrier-sense
    /// counter it incremented (released verbatim at `TxEnd`, keeping the
    /// counters balanced across mid-flight audibility changes).
    pub sensing_holds: HashMap<u64, Vec<StationId>>,
    /// Next ground-truth exchange id.
    pub next_xid: u64,
    /// Next ephemeral port to hand out.
    pub next_port: u16,

    /// Interferers (microwave ovens).
    pub interferers: Vec<InterfererState>,

    /// Clients registered with the Vernier-style management server.
    pub vernier_registry: Vec<(Ipv4Addr, MacAddr)>,
    /// Round-robin cursor into the registry.
    pub vernier_next: usize,
    /// The management server host (None disables the ARP scanner).
    pub vernier_host: Option<HostId>,
}

impl World {
    /// Station accessor.
    pub fn station(&self, sid: StationId) -> &Station {
        &self.stations[sid.index()]
    }

    /// Mutable station accessor.
    pub fn station_mut(&mut self, sid: StationId) -> &mut Station {
        &mut self.stations[sid.index()]
    }

    /// True when ground truth should record traffic between `a` and `b`.
    pub fn truth_covers(&self, a: Option<MacAddr>, b: Option<MacAddr>) -> bool {
        match self.truth_mode {
            TruthMode::Off => false,
            TruthMode::Full => true,
            TruthMode::Sample(m) => a == Some(m) || b == Some(m),
        }
    }

    /// Allocates a fresh ground-truth exchange id for a unicast MSDU.
    pub fn new_exchange(&mut self, sender: MacAddr, receiver: MacAddr) -> u64 {
        if !self.truth_covers(Some(sender), Some(receiver)) {
            return u64::MAX;
        }
        let xid = self.next_xid;
        self.next_xid += 1;
        self.truth.exchanges.push(TruthExchange {
            xid,
            sender,
            receiver,
            attempts: 0,
            delivered: false,
            acked: false,
            first_tx: 0,
            last_tx: 0,
        });
        xid
    }

    /// Allocates an ephemeral TCP port.
    pub fn alloc_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = if self.next_port >= 64000 {
            10_000
        } else {
            self.next_port + 1
        };
        p
    }

    /// Runs the event loop until `horizon` (true time, µs), then finalizes.
    pub fn run(mut self, horizon: Micros) -> SimOutput {
        while let Some((t, ev)) = self.queue.pop() {
            if t > horizon {
                break;
            }
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.dispatch(ev);
        }
        self.finalize(horizon)
    }

    pub(crate) fn dispatch(&mut self, ev: EventKind) {
        match ev {
            EventKind::TxEnd { tx_id } => self.on_tx_end(tx_id),
            EventKind::MacTimer { station, gen, kind } => self.on_mac_timer(station, gen, kind),
            EventKind::Beacon { station } => self.on_beacon_timer(station),
            EventKind::WiredArrival { handle } => self.on_wired_arrival(handle),
            EventKind::TcpTimer { flow, gen } => self.on_tcp_timer(flow, gen),
            EventKind::AppTimer { station, gen } => self.on_app_timer(station, gen),
            EventKind::NoiseBurst { entity } => self.on_noise_burst(entity),
            EventKind::ProtectionCheck { station } => self.on_protection_check(station),
            EventKind::VernierArp => self.on_vernier_arp(),
            EventKind::HostApp { host, flow } => self.on_host_app(host, flow),
            EventKind::ClientLifecycle { station, activate } => {
                self.on_client_lifecycle(station, activate)
            }
            EventKind::SshKeystroke { flow } => self.on_ssh_keystroke(flow),
            EventKind::OfficeBroadcast { station } => self.on_office_broadcast(station),
            EventKind::ClientRoam { station, dwell_us } => self.on_client_roam(station, dwell_us),
            EventKind::ChannelRealloc { station, channel } => {
                self.on_channel_realloc(station, channel)
            }
            EventKind::ClientRetune { station, channel } => self.on_client_retune(station, channel),
        }
    }

    fn finalize(mut self, horizon: Micros) -> SimOutput {
        // Gather per-station stats into the aggregate.
        for s in &self.stations {
            self.stats.queue_drops += s.mac.queue_drops;
            self.stats.retry_failures += s.mac.retry_failures;
            self.stats.frames_transmitted += s.tx_frames;
        }
        self.stats.flows_opened = self.flows.len() as u64;
        self.stats.flows_completed = self.flows.iter().filter(|f| f.completed).count() as u64;
        for f in &self.flows {
            self.stats.tcp_rto_retx += f.client_end.rto_retransmits + f.host_end.rto_retransmits;
            self.stats.tcp_fast_retx += f.client_end.fast_retransmits + f.host_end.fast_retransmits;
        }

        let mut traces = Vec::with_capacity(self.collectors.len());
        let mut capture_events = 0u64;
        for mut c in self.collectors {
            c.finalize();
            capture_events += c.len() as u64;
            traces.push(c.events);
        }
        self.stats.capture_events = capture_events;

        let mut radio_meta = Vec::with_capacity(traces.len());
        for m in self.monitors.iter_mut() {
            for slot in 0..2 {
                radio_meta.push(m.radio_meta(slot));
            }
        }
        radio_meta.sort_by_key(|m| m.radio.0);

        let stations = self
            .stations
            .iter()
            .map(|s| {
                let e = self.medium.entity(s.entity);
                StationInfo {
                    addr: s.mac.addr,
                    is_ap: s.is_ap(),
                    b_only: s.mac.b_only,
                    external: matches!(&s.role, Role::Ap(a) if a.external),
                    channel: e.channel.number(),
                    pos: (e.pos.x, e.pos.y, e.pos.z),
                }
            })
            .collect();

        self.truth.transmissions.sort_by_key(|t| t.start);
        self.wired_trace.sort_by_key(|w| w.ts);

        SimOutput {
            radio_meta,
            traces,
            wired: self.wired_trace,
            truth: self.truth,
            stations,
            stats: self.stats,
            duration_us: horizon,
        }
    }
}
