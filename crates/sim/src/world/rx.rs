//! Transmission-end processing: releasing carrier sense, resolving which
//! stations decoded the frame, and generating monitor capture events
//! (Ok / FCS-error / PHY-error) with per-monitor clock timestamps.

use super::World;
use crate::medium::{CompletedTx, OverlapInfo};
use crate::monitor::capture_timestamp;
use crate::prop::{
    fading_ddb, frame_error_prob, preamble_success_prob, CAPTURE_FLOOR_DDBM, CS_PREAMBLE_DDBM,
};
use jigsaw_ieee80211::Channel;
use jigsaw_trace::{PhyEvent, PhyStatus};
use rand::Rng;

impl World {
    /// Full processing of a completed transmission.
    pub(crate) fn on_tx_end(&mut self, tx_id: u64) {
        let tag = self
            .tx_tags
            .remove(&tx_id)
            .expect("transmission without tag");
        let completed = self.medium.end_tx(tx_id);

        // 1. Release physical carrier sense (exactly the set acquired at
        // start — audibility may have changed while the frame was in the
        // air).
        self.apply_sensing_end(tx_id);

        // 2. Deliveries to MAC stations (frames only).
        if completed.desc.frame.is_some() {
            self.deliver_to_stations(&completed);
        }

        // 3. Monitor captures (everything, including noise).
        self.capture_at_monitors(&completed);

        // 4. Sender-side continuation.
        self.mac_tx_finished(tag);
    }

    /// True if receiver `rx_entity` had locked onto an earlier overlapping
    /// transmission on its channel and therefore never synchronized to this
    /// one.
    fn locked_elsewhere(
        &self,
        rx_entity: u32,
        subject_start: u64,
        subject_entity: u32,
        rx_channel: Channel,
        overlaps: &[OverlapInfo],
    ) -> bool {
        overlaps.iter().any(|o| {
            if o.is_noise || o.entity == rx_entity {
                return false;
            }
            if o.channel != rx_channel {
                return false;
            }
            let earlier =
                o.start < subject_start || (o.start == subject_start && o.entity < subject_entity);
            earlier && self.medium.rx_power_ddbm(o.entity, rx_entity, o.channel) >= CS_PREAMBLE_DDBM
        })
    }

    fn deliver_to_stations(&mut self, completed: &CompletedTx) {
        let desc = &completed.desc;
        let n = self.audible_stations[desc.entity as usize].len();
        for k in 0..n {
            let (sid, power) = self.audible_stations[desc.entity as usize][k];
            let rx_entity = self.stations[sid.index()].entity;
            // Cross-channel frames are never decodable.
            if self.medium.entity(rx_entity).channel != desc.channel {
                continue;
            }
            // Half duplex: we were transmitting during this frame.
            if self
                .medium
                .rx_was_transmitting(rx_entity, &completed.overlaps)
            {
                continue;
            }
            if self.locked_elsewhere(
                rx_entity,
                desc.start,
                desc.entity,
                desc.channel,
                &completed.overlaps,
            ) {
                continue;
            }
            let interference = self
                .medium
                .interference_ddbm(rx_entity, &completed.overlaps);
            let power = power + fading_ddb(&mut self.rng);
            let sinr = power - interference;
            let fer = frame_error_prob(sinr, desc.rate, desc.bytes.len());
            if self.rng.gen_bool((1.0 - fer).clamp(0.0, 1.0)) {
                if desc.truth_idx != usize::MAX {
                    let addressed = desc
                        .frame
                        .as_ref()
                        .map(|f| f.receiver() == self.stations[sid.index()].mac.addr)
                        .unwrap_or(false);
                    if addressed {
                        if let Some(t) = self.truth.transmissions.get_mut(desc.truth_idx) {
                            t.delivered = Some(true);
                        }
                        let xid = self.truth.transmissions[desc.truth_idx].xid;
                        if xid != u64::MAX {
                            if let Some(x) = self.truth.exchanges.get_mut(xid as usize) {
                                x.delivered = true;
                            }
                        }
                    }
                }
                let frame = desc.frame.clone().expect("frame-bearing tx");
                self.station_rx_frame(sid, frame, power, desc.rate);
            }
        }
    }

    fn capture_at_monitors(&mut self, completed: &CompletedTx) {
        let desc = &completed.desc;
        let n = self.audible_radios[desc.entity as usize].len();
        for k in 0..n {
            let (rx_entity, power) = self.audible_radios[desc.entity as usize][k];
            let power = power + fading_ddb(&mut self.rng);
            if power < CAPTURE_FLOOR_DDBM {
                continue;
            }
            let (mon_idx, slot) = match self.entity_monitor_radio[rx_entity as usize] {
                Some(x) => x,
                None => continue,
            };
            let rx_channel = self.medium.entity(rx_entity).channel;
            let interference = self
                .medium
                .interference_ddbm(rx_entity, &completed.overlaps);
            let sinr = power - interference;
            let rssi_dbm = (power / 10 + self.rng.gen_range(-2..=2)) as i16;

            let status = if desc.is_noise {
                // Strong noise bursts are logged as PHY errors.
                if power >= -800 {
                    Some(PhyStatus::PhyError)
                } else {
                    None
                }
            } else if rx_channel != desc.channel {
                // Adjacent-channel bleed: undecodable energy.
                if power >= -850 {
                    Some(PhyStatus::PhyError)
                } else {
                    None
                }
            } else if self.locked_elsewhere(
                rx_entity,
                desc.start,
                desc.entity,
                desc.channel,
                &completed.overlaps,
            ) {
                // Collision at this vantage point: at most a PHY error.
                Some(PhyStatus::PhyError)
            } else if !self
                .rng
                .gen_bool(preamble_success_prob(sinr).clamp(0.0, 1.0))
            {
                Some(PhyStatus::PhyError)
            } else {
                let fer = frame_error_prob(sinr, desc.rate, desc.bytes.len());
                if self.rng.gen_bool((1.0 - fer).clamp(0.0, 1.0)) {
                    Some(PhyStatus::Ok)
                } else {
                    Some(PhyStatus::FcsError)
                }
            };
            let Some(status) = status else { continue };

            let snaplen = self.cfg.snaplen as usize;
            let (bytes, wire_len) = match status {
                PhyStatus::Ok => {
                    let cap = desc.bytes.len().min(snaplen);
                    (desc.bytes[..cap].to_vec(), desc.bytes.len() as u32)
                }
                PhyStatus::FcsError => {
                    // Corrupt a copy: flip a few bytes; sometimes truncate.
                    let mut b = desc.bytes.clone();
                    let flips = self.rng.gen_range(1..=4).min(b.len());
                    for _ in 0..flips {
                        let i = self.rng.gen_range(0..b.len());
                        b[i] ^= self.rng.gen_range(1..=255u8);
                    }
                    if self.rng.gen_bool(0.3) && b.len() > 4 {
                        let cut = self.rng.gen_range(2..b.len());
                        b.truncate(cut);
                    }
                    b.truncate(snaplen);
                    (b, desc.bytes.len() as u32)
                }
                PhyStatus::PhyError => (Vec::new(), 0),
            };

            let radio = self.monitors[usize::from(mon_idx)].radios[usize::from(slot)].radio;
            let ts_local = capture_timestamp(
                &mut self.monitors[usize::from(mon_idx)].clock,
                desc.start,
                desc.plcp_us,
            );
            self.collectors[radio.index()].push(PhyEvent {
                radio,
                ts_local,
                channel: rx_channel,
                rate: desc.rate,
                rssi_dbm,
                status,
                wire_len,
                bytes: bytes.into(),
            });
            if desc.truth_idx != usize::MAX {
                if let Some(t) = self.truth.transmissions.get_mut(desc.truth_idx) {
                    t.captures = t.captures.saturating_add(1);
                }
            }
        }
    }
}
