//! Driving the DCF state machine: contention, backoff, transmission
//! start/finish, retries, and SIFS-spaced responses.

use super::{HeadStage, TxTag, World};
use crate::event::{EventKind, MacTimerKind};
use crate::mac::{MacPhase, Mpdu, MpduKind, SifsAction, RETRY_LIMIT};
use crate::medium::TxDesc;
use crate::output::TruthRecord;
use crate::StationId;
use jigsaw_ieee80211::frame::{Frame, MgmtBody, MgmtHeader};
use jigsaw_ieee80211::rate::Modulation;
use jigsaw_ieee80211::timing::{
    ack_airtime_us, airtime_us, duration_cts_to_self, duration_data_ack, Preamble, DIFS_US,
    DSSS_LONG_PLCP_US, DSSS_SHORT_PLCP_US, OFDM_PLCP_US, SIFS_US, SLOT_US,
};
use jigsaw_ieee80211::wire::serialize_frame;
use jigsaw_ieee80211::{MacAddr, Micros, PhyRate};
use rand::Rng;

/// Extra slack beyond SIFS+ACK before declaring an ACK lost.
const ACK_SLACK_US: Micros = 3 * SLOT_US;

impl World {
    /// PLCP duration for a rate/preamble combination.
    pub(crate) fn plcp_us(rate: PhyRate, preamble: Preamble) -> Micros {
        match rate.modulation() {
            Modulation::Ofdm => OFDM_PLCP_US,
            _ => match preamble {
                Preamble::Long => DSSS_LONG_PLCP_US,
                Preamble::Short => DSSS_SHORT_PLCP_US,
            },
        }
    }

    /// Enqueues an MPDU at a station's MAC and kicks contention.
    pub(crate) fn mac_enqueue(&mut self, sid: StationId, mpdu: Mpdu) {
        let accepted = self.stations[sid.index()].mac.enqueue(mpdu);
        if accepted {
            let mac = &self.stations[sid.index()].mac;
            if mac.phase == MacPhase::Idle && !mac.radio_busy {
                self.mac_kick(sid);
            }
        }
    }

    /// Starts contention for the head of the queue if the MAC is idle.
    pub(crate) fn mac_kick(&mut self, sid: StationId) {
        let now = self.now;
        {
            let mac = &self.stations[sid.index()].mac;
            if mac.phase != MacPhase::Idle || mac.queue.is_empty() || mac.radio_busy {
                return;
            }
            if !mac.medium_busy(now) && now >= mac.idle_since + DIFS_US {
                // Medium has been idle long enough: transmit immediately.
            } else {
                self.mac_enter_backoff(sid);
                return;
            }
        }
        self.mac_transmit_head(sid);
    }

    /// Draws a backoff and schedules slot ticks.
    pub(crate) fn mac_enter_backoff(&mut self, sid: StationId) {
        let now = self.now;
        let slots = {
            let cw = self.stations[sid.index()].mac.cw;
            self.rng.gen_range(0..=u32::from(cw))
        };
        let mac = &mut self.stations[sid.index()].mac;
        mac.phase = MacPhase::Backoff;
        mac.backoff_slots = slots;
        if !mac.medium_busy(now) && !mac.radio_busy {
            let at = now.max(mac.idle_since + DIFS_US) + SLOT_US;
            let gen = mac.bump_backoff();
            self.queue.schedule(
                at,
                EventKind::MacTimer {
                    station: sid,
                    gen,
                    kind: MacTimerKind::BackoffSlot,
                },
            );
        }
        // If busy, the idle transition will schedule the tick.
    }

    /// Handles all MAC timers for `sid`.
    pub(crate) fn on_mac_timer(&mut self, sid: StationId, gen: u32, kind: MacTimerKind) {
        let mac = &self.stations[sid.index()].mac;
        let valid = match kind {
            MacTimerKind::BackoffSlot => gen == mac.gen_backoff,
            MacTimerKind::AckTimeout => gen == mac.gen_ack,
            MacTimerKind::SifsAction => gen == mac.gen_resp,
        };
        if !valid {
            return;
        }
        match kind {
            MacTimerKind::BackoffSlot => self.on_backoff_slot(sid),
            MacTimerKind::AckTimeout => self.on_ack_timeout(sid),
            MacTimerKind::SifsAction => self.on_sifs_action(sid),
        }
    }

    fn on_backoff_slot(&mut self, sid: StationId) {
        let now = self.now;
        let mac = &mut self.stations[sid.index()].mac;
        if mac.phase != MacPhase::Backoff || mac.radio_busy {
            return;
        }
        if mac.sensed > 0 {
            // Physical carrier: the busy→idle transition will resume us.
            return;
        }
        if mac.nav_until > now {
            // Virtual carrier only: nobody will wake us — reschedule at the
            // NAV boundary ourselves.
            let at = mac.nav_until + DIFS_US + SLOT_US;
            let gen = mac.bump_backoff();
            self.queue.schedule(
                at,
                EventKind::MacTimer {
                    station: sid,
                    gen,
                    kind: MacTimerKind::BackoffSlot,
                },
            );
            return;
        }
        if mac.backoff_slots == 0 {
            self.mac_transmit_head(sid);
        } else {
            mac.backoff_slots -= 1;
            let gen = mac.bump_backoff();
            self.queue.schedule(
                now + SLOT_US,
                EventKind::MacTimer {
                    station: sid,
                    gen,
                    kind: MacTimerKind::BackoffSlot,
                },
            );
        }
    }

    /// Builds the on-air frame for the head-of-queue MPDU.
    /// Returns `(frame, rate)`.
    fn build_head_frame(&mut self, sid: StationId) -> (Frame, PhyRate) {
        let now = self.now;
        let is_ap = self.stations[sid.index()].is_ap();
        let my_addr = self.stations[sid.index()].mac.addr;
        // Assign the sequence number once per MSDU (kept across retries).
        let (dst, retry) = {
            let mac = &mut self.stations[sid.index()].mac;
            let next = mac.next_seq();
            let head = mac.queue.front_mut().expect("queue head");
            if head.seq.is_none() {
                head.seq = Some(next);
            } else {
                // Undo the draw (retries re-use the number).
                mac.seq_counter = next;
            }
            (
                mac.queue.front().unwrap().dst,
                mac.queue.front().unwrap().retries > 0,
            )
        };
        let mac = &mut self.stations[sid.index()].mac;
        let head = mac.queue.front().unwrap();
        let seq = head.seq.unwrap();
        let preamble = mac.preamble;
        match head.kind.clone() {
            MpduKind::Msdu {
                bytes,
                addr3,
                to_ds,
                from_ds,
            } => {
                let rate = if dst.is_multicast() {
                    PhyRate::R1
                } else {
                    mac.current_rate(dst)
                };
                let f = crate::frames::data_frame(
                    dst, my_addr, addr3, to_ds, from_ds, seq, retry, rate, preamble, bytes,
                );
                (f, rate)
            }
            MpduKind::Mgmt(mut body) => {
                // Beacons and probe responses carry the TSF at tx time.
                match &mut body {
                    MgmtBody::Beacon { timestamp, .. } | MgmtBody::ProbeResp { timestamp, .. } => {
                        *timestamp = now;
                    }
                    _ => {}
                }
                let rate = if dst.is_multicast() {
                    PhyRate::R1
                } else {
                    PhyRate::R2
                };
                let bssid = if is_ap {
                    my_addr
                } else if dst.is_multicast() {
                    MacAddr::BROADCAST
                } else {
                    dst
                };
                let mut header = MgmtHeader::new(dst, my_addr, bssid, seq);
                header.retry = retry;
                header.duration = if dst.is_unicast() {
                    duration_data_ack(rate, preamble)
                } else {
                    0
                };
                (Frame::Mgmt { header, body }, rate)
            }
            MpduKind::Null => {
                let rate = PhyRate::R2;
                let f = Frame::Data(jigsaw_ieee80211::frame::DataFrame {
                    duration: duration_data_ack(rate, preamble),
                    addr1: dst,
                    addr2: my_addr,
                    addr3: dst,
                    seq,
                    frag: 0,
                    flags: jigsaw_ieee80211::fc::FcFlags {
                        to_ds: !is_ap,
                        from_ds: is_ap,
                        retry,
                        ..Default::default()
                    },
                    null: true,
                    body: vec![],
                });
                (f, rate)
            }
        }
    }

    /// Transmits the head MPDU (possibly preceded by CTS-to-self).
    fn mac_transmit_head(&mut self, sid: StationId) {
        if self.stations[sid.index()].mac.queue.is_empty() {
            self.stations[sid.index()].mac.phase = MacPhase::Idle;
            return;
        }
        let (frame, rate) = self.build_head_frame(sid);
        let needs_protection = {
            let mac = &self.stations[sid.index()].mac;
            mac.needs_protection(rate) && matches!(frame, Frame::Data(_))
        };
        if needs_protection {
            // CTS-to-self at 2 Mbps with the long preamble (paper fn. 7).
            let my_addr = self.stations[sid.index()].mac.addr;
            let preamble = self.stations[sid.index()].mac.preamble;
            let data_len = serialize_frame(&frame).len();
            let cts = Frame::Cts {
                duration: duration_cts_to_self(rate, data_len, preamble),
                ra: my_addr,
            };
            self.stations[sid.index()].mac.phase = MacPhase::TxCts;
            self.start_station_tx(
                sid,
                cts,
                PhyRate::R2,
                TxTag::Head {
                    station: sid,
                    stage: HeadStage::Cts,
                    rate,
                },
            );
        } else {
            self.stations[sid.index()].mac.phase = MacPhase::TxData;
            self.note_attempt(sid);
            self.start_station_tx(
                sid,
                frame,
                rate,
                TxTag::Head {
                    station: sid,
                    stage: HeadStage::Data,
                    rate,
                },
            );
        }
    }

    /// Updates the ground-truth exchange for a data attempt.
    fn note_attempt(&mut self, sid: StationId) {
        let now = self.now;
        let xid = self.stations[sid.index()]
            .mac
            .queue
            .front()
            .map(|m| m.truth_xid)
            .unwrap_or(u64::MAX);
        if xid != u64::MAX {
            if let Some(x) = self.truth.exchanges.get_mut(xid as usize) {
                if x.attempts == 0 {
                    x.first_tx = now;
                }
                x.attempts = x.attempts.saturating_add(1);
                x.last_tx = now;
            }
        }
    }

    /// Puts a frame on the air from a station.
    pub(crate) fn start_station_tx(
        &mut self,
        sid: StationId,
        frame: Frame,
        rate: PhyRate,
        tag: TxTag,
    ) {
        let now = self.now;
        let entity = self.stations[sid.index()].entity;
        let preamble = self.stations[sid.index()].mac.preamble;
        let bytes = serialize_frame(&frame);
        let air = airtime_us(rate, bytes.len(), preamble);
        let plcp = Self::plcp_us(rate, preamble);
        let channel = self.medium.entity(entity).channel;

        let sender = frame
            .transmitter()
            .or(Some(self.stations[sid.index()].mac.addr));
        let receiver = Some(frame.receiver());
        let truth_idx = if self.truth_covers(sender, receiver) {
            let xid = match tag {
                TxTag::Head {
                    stage: HeadStage::Data,
                    ..
                } => self.stations[sid.index()]
                    .mac
                    .queue
                    .front()
                    .map(|m| m.truth_xid)
                    .unwrap_or(u64::MAX),
                _ => u64::MAX,
            };
            self.truth.transmissions.push(TruthRecord {
                start: now,
                end: now + air,
                plcp_us: plcp,
                channel: channel.number(),
                rate,
                subtype: Some(frame.subtype()),
                sender,
                receiver,
                seq: frame.seq().map(|s| s.value()),
                retry: frame.retry(),
                wire_len: bytes.len() as u32,
                is_noise: false,
                xid,
                delivered: if receiver.map(|r| r.is_unicast()).unwrap_or(false) {
                    Some(false)
                } else {
                    None
                },
                captures: 0,
            });
            self.truth.transmissions.len() - 1
        } else {
            usize::MAX
        };

        let tx_id = self.medium.start_tx(TxDesc {
            entity,
            channel,
            rate,
            start: now,
            end: now + air,
            plcp_us: plcp,
            frame: Some(frame),
            bytes,
            is_noise: false,
            truth_idx,
        });
        self.tx_tags.insert(tx_id, tag);
        self.queue.schedule(now + air, EventKind::TxEnd { tx_id });
        self.apply_sensing_start(tx_id, entity, rate, false);
        self.stations[sid.index()].mac.radio_busy = true;
        self.stations[sid.index()].tx_frames += 1;
    }

    /// Sender-side bookkeeping when one of our transmissions ends.
    pub(crate) fn mac_tx_finished(&mut self, tag: TxTag) {
        let now = self.now;
        match tag {
            TxTag::Head {
                station,
                stage,
                rate,
            } => {
                let mac = &mut self.stations[station.index()].mac;
                mac.radio_busy = false;
                mac.idle_since = now;
                match stage {
                    HeadStage::Cts => {
                        mac.phase = MacPhase::WaitSifs;
                        mac.sifs_action = Some(SifsAction::SendProtectedData);
                        let gen = mac.bump_resp();
                        self.queue.schedule(
                            now + SIFS_US,
                            EventKind::MacTimer {
                                station,
                                gen,
                                kind: MacTimerKind::SifsAction,
                            },
                        );
                    }
                    HeadStage::Data => {
                        let needs_ack = mac.queue.front().map(|m| m.needs_ack()).unwrap_or(false);
                        if needs_ack {
                            mac.phase = MacPhase::WaitAck;
                            let preamble = mac.preamble;
                            let gen = mac.bump_ack();
                            let deadline =
                                now + SIFS_US + ack_airtime_us(rate, preamble) + ACK_SLACK_US;
                            self.queue.schedule(
                                deadline,
                                EventKind::MacTimer {
                                    station,
                                    gen,
                                    kind: MacTimerKind::AckTimeout,
                                },
                            );
                        } else {
                            self.head_complete(station, true);
                        }
                    }
                }
            }
            TxTag::Response { station } => {
                let mac = &mut self.stations[station.index()].mac;
                mac.radio_busy = false;
                mac.idle_since = now;
                let phase = mac.phase.clone();
                let busy = mac.medium_busy(now);
                match phase {
                    MacPhase::Backoff if !busy => {
                        let at = now.max(mac.idle_since + DIFS_US) + SLOT_US;
                        let gen = mac.bump_backoff();
                        self.queue.schedule(
                            at,
                            EventKind::MacTimer {
                                station,
                                gen,
                                kind: MacTimerKind::BackoffSlot,
                            },
                        );
                    }
                    MacPhase::Idle if !self.stations[station.index()].mac.queue.is_empty() => {
                        self.mac_kick(station);
                    }
                    _ => {}
                }
            }
            TxTag::Noise { interferer } => {
                self.interferers[usize::from(interferer)].burst_active = false;
            }
        }
    }

    /// The ACK never came.
    fn on_ack_timeout(&mut self, sid: StationId) {
        let now = self.now;
        let mac = &mut self.stations[sid.index()].mac;
        if mac.phase != MacPhase::WaitAck {
            return;
        }
        let dst = match mac.queue.front() {
            Some(h) => h.dst,
            None => {
                mac.phase = MacPhase::Idle;
                return;
            }
        };
        mac.arf_feedback(dst, false);
        let retries = {
            let head = mac.queue.front_mut().unwrap();
            head.retries += 1;
            head.retries
        };
        let _ = now;
        if retries > RETRY_LIMIT {
            mac.retry_failures += 1;
            self.head_complete(sid, false);
        } else {
            mac.grow_cw();
            mac.phase = MacPhase::Idle;
            self.mac_enter_backoff(sid);
        }
    }

    /// SIFS elapsed: send the pending response or the protected data stage.
    fn on_sifs_action(&mut self, sid: StationId) {
        let action = self.stations[sid.index()].mac.sifs_action.take();
        match action {
            Some(SifsAction::SendAck { to, rate }) => {
                if self.stations[sid.index()].mac.radio_busy {
                    return; // shouldn't happen; drop the ACK
                }
                let ack = Frame::Ack {
                    duration: 0,
                    ra: to,
                };
                self.start_station_tx(sid, ack, rate, TxTag::Response { station: sid });
            }
            Some(SifsAction::SendProtectedData) => {
                if self.stations[sid.index()].mac.phase != MacPhase::WaitSifs {
                    return;
                }
                let (frame, rate) = self.build_head_frame(sid);
                self.stations[sid.index()].mac.phase = MacPhase::TxData;
                self.note_attempt(sid);
                self.start_station_tx(
                    sid,
                    frame,
                    rate,
                    TxTag::Head {
                        station: sid,
                        stage: HeadStage::Data,
                        rate,
                    },
                );
            }
            None => {}
        }
    }

    /// The head exchange is over (success or abandoned).
    pub(crate) fn head_complete(&mut self, sid: StationId, success: bool) {
        let mac = &mut self.stations[sid.index()].mac;
        let head = match mac.queue.pop_front() {
            Some(h) => h,
            None => return,
        };
        mac.reset_cw();
        mac.phase = MacPhase::Idle;
        if head.dst.is_unicast() {
            mac.arf_feedback(head.dst, success);
        }
        if head.truth_xid != u64::MAX {
            if let Some(x) = self.truth.exchanges.get_mut(head.truth_xid as usize) {
                x.acked = success;
            }
        }
        if !self.stations[sid.index()].mac.queue.is_empty() {
            // Post-transmission backoff before the next frame.
            self.mac_enter_backoff(sid);
        }
        let _ = head;
    }

    /// An ACK addressed to us arrived while we were waiting for it.
    pub(crate) fn on_ack_received(&mut self, sid: StationId) {
        let mac = &mut self.stations[sid.index()].mac;
        if mac.phase != MacPhase::WaitAck {
            return;
        }
        mac.bump_ack(); // cancel the timeout
        self.head_complete(sid, true);
    }

    /// Physical-carrier acquisition when transmission `tx_id` starts: every
    /// audible station above its carrier-sense threshold marks the medium
    /// busy. The exact set of stations incremented is recorded against
    /// `tx_id`, so the release in [`Self::apply_sensing_end`] stays balanced
    /// even if audibility lists mutate mid-flight (roaming, re-allocation).
    pub(crate) fn apply_sensing_start(
        &mut self,
        tx_id: u64,
        tx_entity: u32,
        rate: PhyRate,
        is_noise: bool,
    ) {
        let n = self.audible_stations[tx_entity as usize].len();
        let mut held = Vec::new();
        for k in 0..n {
            let (sid, power) = self.audible_stations[tx_entity as usize][k];
            let listener_entity = self.stations[sid.index()].entity;
            let threshold = self
                .medium
                .cs_threshold_ddbm(listener_entity, rate, is_noise);
            if power < threshold {
                continue;
            }
            let mac = &mut self.stations[sid.index()].mac;
            mac.sensed += 1;
            if mac.sensed == 1 {
                // Busy transition: freeze backoff.
                mac.bump_backoff();
            }
            held.push(sid);
        }
        if !held.is_empty() {
            self.sensing_holds.insert(tx_id, held);
        }
    }

    /// Physical-carrier release when transmission `tx_id` ends: decrements
    /// exactly the stations recorded at start.
    pub(crate) fn apply_sensing_end(&mut self, tx_id: u64) {
        let now = self.now;
        let held = match self.sensing_holds.remove(&tx_id) {
            Some(h) => h,
            None => return,
        };
        for sid in held {
            let mac = &mut self.stations[sid.index()].mac;
            mac.sensed = mac.sensed.saturating_sub(1);
            if mac.sensed == 0 {
                // Idle transition.
                mac.idle_since = now.max(mac.nav_until);
                let in_backoff = mac.phase == MacPhase::Backoff && !mac.radio_busy;
                let idle_kickable =
                    mac.phase == MacPhase::Idle && !mac.radio_busy && !mac.queue.is_empty();
                if in_backoff {
                    let at = mac.idle_since + DIFS_US + SLOT_US;
                    let gen = mac.bump_backoff();
                    self.queue.schedule(
                        at,
                        EventKind::MacTimer {
                            station: sid,
                            gen,
                            kind: MacTimerKind::BackoffSlot,
                        },
                    );
                } else if idle_kickable {
                    self.mac_kick(sid);
                }
            }
        }
    }
}
