//! ARP for IPv4 over 802.x media.
//!
//! ARP matters to the paper far beyond address resolution: §7.1 finds that
//! wired-side ARP broadcasts — forwarded onto *every* AP's channel at the
//! lowest rate — regularly consume ~10% of airtime. The simulator reproduces
//! that workload (a Vernier-style management server ARP-scanning the client
//! space), so ARP needs a faithful wire format.

use crate::PacketError;
use std::net::Ipv4Addr;

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArpOp {
    /// Who-has.
    Request,
    /// Is-at.
    Reply,
}

impl ArpOp {
    fn code(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        }
    }

    fn from_code(c: u16) -> Option<Self> {
        match c {
            1 => Some(ArpOp::Request),
            2 => Some(ArpOp::Reply),
            _ => None,
        }
    }
}

/// An Ethernet/IPv4 ARP packet (28 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    /// Request or reply.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: [u8; 6],
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: [u8; 6],
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

/// On-air size of an Ethernet/IPv4 ARP packet.
pub const ARP_LEN: usize = 28;

impl ArpPacket {
    /// Builds a who-has request.
    pub fn who_has(sender_mac: [u8; 6], sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: [0; 6],
            target_ip,
        }
    }

    /// Builds the is-at reply answering `req`.
    pub fn reply_to(req: &ArpPacket, my_mac: [u8; 6]) -> Self {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: my_mac,
            sender_ip: req.target_ip,
            target_mac: req.sender_mac,
            target_ip: req.sender_ip,
        }
    }

    /// Serializes onto `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&1u16.to_be_bytes()); // htype: ethernet
        out.extend_from_slice(&0x0800u16.to_be_bytes()); // ptype: ipv4
        out.push(6); // hlen
        out.push(4); // plen
        out.extend_from_slice(&self.op.code().to_be_bytes());
        out.extend_from_slice(&self.sender_mac);
        out.extend_from_slice(&self.sender_ip.octets());
        out.extend_from_slice(&self.target_mac);
        out.extend_from_slice(&self.target_ip.octets());
    }

    /// Parses from bytes.
    pub fn parse(bytes: &[u8]) -> Result<Self, PacketError> {
        if bytes.len() < ARP_LEN {
            return Err(PacketError::Truncated {
                layer: "arp",
                needed: ARP_LEN,
                got: bytes.len(),
            });
        }
        let htype = u16::from_be_bytes([bytes[0], bytes[1]]);
        let ptype = u16::from_be_bytes([bytes[2], bytes[3]]);
        if htype != 1 || ptype != 0x0800 || bytes[4] != 6 || bytes[5] != 4 {
            return Err(PacketError::Unsupported {
                what: "non ethernet/ipv4 arp",
            });
        }
        let op = ArpOp::from_code(u16::from_be_bytes([bytes[6], bytes[7]]))
            .ok_or(PacketError::Unsupported { what: "arp opcode" })?;
        let mut sender_mac = [0u8; 6];
        sender_mac.copy_from_slice(&bytes[8..14]);
        let sender_ip = Ipv4Addr::new(bytes[14], bytes[15], bytes[16], bytes[17]);
        let mut target_mac = [0u8; 6];
        target_mac.copy_from_slice(&bytes[18..24]);
        let target_ip = Ipv4Addr::new(bytes[24], bytes[25], bytes[26], bytes[27]);
        Ok(ArpPacket {
            op,
            sender_mac,
            sender_ip,
            target_mac,
            target_ip,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_reply_roundtrip() {
        let req = ArpPacket::who_has(
            [2, 0, 0, 0, 0, 9],
            Ipv4Addr::new(10, 0, 0, 9),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        let mut buf = Vec::new();
        req.write(&mut buf);
        assert_eq!(buf.len(), ARP_LEN);
        assert_eq!(ArpPacket::parse(&buf).unwrap(), req);

        let rep = ArpPacket::reply_to(&req, [2, 0, 0, 0, 0, 1]);
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.target_ip, req.sender_ip);
        assert_eq!(rep.sender_ip, req.target_ip);
        assert_eq!(rep.target_mac, req.sender_mac);
    }

    #[test]
    fn truncated() {
        assert!(ArpPacket::parse(&[0; 27]).is_err());
    }

    #[test]
    fn bad_htype() {
        let mut buf = Vec::new();
        ArpPacket::who_has([0; 6], Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED).write(&mut buf);
        buf[0] = 9;
        assert!(matches!(
            ArpPacket::parse(&buf),
            Err(PacketError::Unsupported { .. })
        ));
    }
}
