//! LLC/SNAP encapsulation (RFC 1042): the 8-byte prefix of every 802.11
//! data-frame body that carries an ethertype-tagged payload.

use crate::PacketError;

/// Length of the LLC/SNAP header: AA AA 03 | 00 00 00 | ethertype(2).
pub const LLC_SNAP_LEN: usize = 8;

/// Well-known ethertypes used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EtherType(pub u16);

impl EtherType {
    /// IPv4.
    pub const IPV4: EtherType = EtherType(0x0800);
    /// ARP.
    pub const ARP: EtherType = EtherType(0x0806);
}

/// Writes the LLC/SNAP header for `ethertype` onto `out`.
pub fn write_llc_snap(out: &mut Vec<u8>, ethertype: u16) {
    out.extend_from_slice(&[0xaa, 0xaa, 0x03, 0x00, 0x00, 0x00]);
    out.extend_from_slice(&ethertype.to_be_bytes());
}

/// Parses an LLC/SNAP header, returning `(ethertype, payload)`.
pub fn parse_llc_snap(bytes: &[u8]) -> Result<(u16, &[u8]), PacketError> {
    if bytes.len() < LLC_SNAP_LEN {
        return Err(PacketError::Truncated {
            layer: "llc/snap",
            needed: LLC_SNAP_LEN,
            got: bytes.len(),
        });
    }
    if bytes[0] != 0xaa || bytes[1] != 0xaa || bytes[2] != 0x03 {
        return Err(PacketError::Unsupported {
            what: "non-SNAP LLC header",
        });
    }
    let ethertype = u16::from_be_bytes([bytes[6], bytes[7]]);
    Ok((ethertype, &bytes[LLC_SNAP_LEN..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_llc_snap(&mut buf, 0x0800);
        buf.extend_from_slice(b"payload");
        let (et, rest) = parse_llc_snap(&buf).unwrap();
        assert_eq!(et, 0x0800);
        assert_eq!(rest, b"payload");
    }

    #[test]
    fn short_input() {
        assert!(matches!(
            parse_llc_snap(&[0xaa, 0xaa]),
            Err(PacketError::Truncated { .. })
        ));
    }

    #[test]
    fn non_snap_rejected() {
        let buf = [0x42, 0x42, 0x03, 0, 0, 0, 0x08, 0x00];
        assert!(matches!(
            parse_llc_snap(&buf),
            Err(PacketError::Unsupported { .. })
        ));
    }
}
