//! UDP datagrams (zero-filled payload of known length, like [`crate::tcp`]).
//!
//! The paper's broadcast-abuse findings (§7.1) feature UDP heavily: the
//! MS Office anti-piracy beacon broadcast to port 2222 (footnote 6) and
//! assorted discovery chatter. The simulator reproduces those workloads.

use crate::checksum::Checksum;
use crate::PacketError;
use std::net::Ipv4Addr;

/// A UDP datagram with a zero-filled payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload length in bytes.
    pub payload_len: u16,
}

impl UdpDatagram {
    /// Builds a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload_len: u16) -> Self {
        UdpDatagram {
            src_port,
            dst_port,
            payload_len,
        }
    }

    /// Total on-wire length (8-byte header + payload).
    pub fn wire_len(&self) -> usize {
        8 + usize::from(self.payload_len)
    }

    /// Serializes with a valid checksum for the `src`/`dst` pseudo-header.
    pub fn write(&self, out: &mut Vec<u8>, src: Ipv4Addr, dst: Ipv4Addr) {
        let start = out.len();
        let len = self.wire_len() as u16;
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.resize(out.len() + usize::from(self.payload_len), 0);

        let mut ck = Checksum::new();
        ck.add_bytes(&src.octets());
        ck.add_bytes(&dst.octets());
        ck.add_u16(17);
        ck.add_u16(len);
        ck.add_bytes(&out[start..]);
        let mut sum = ck.finish();
        if sum == 0 {
            sum = 0xffff; // per RFC 768, transmitted zero means "no checksum"
        }
        out[start + 6] = (sum >> 8) as u8;
        out[start + 7] = sum as u8;
    }

    /// Parses a UDP datagram; `bytes` may be snap-truncated, the header's
    /// own length field is authoritative.
    pub fn parse(bytes: &[u8]) -> Result<Self, PacketError> {
        if bytes.len() < 8 {
            return Err(PacketError::Truncated {
                layer: "udp",
                needed: 8,
                got: bytes.len(),
            });
        }
        let src_port = u16::from_be_bytes([bytes[0], bytes[1]]);
        let dst_port = u16::from_be_bytes([bytes[2], bytes[3]]);
        let len = u16::from_be_bytes([bytes[4], bytes[5]]);
        if len < 8 {
            return Err(PacketError::Unsupported {
                what: "udp length < 8",
            });
        }
        Ok(UdpDatagram {
            src_port,
            dst_port,
            payload_len: len - 8,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);
    const DST: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 255);

    #[test]
    fn roundtrip() {
        let d = UdpDatagram::new(2222, 2222, 120);
        let mut buf = Vec::new();
        d.write(&mut buf, SRC, DST);
        assert_eq!(buf.len(), d.wire_len());
        assert_eq!(UdpDatagram::parse(&buf).unwrap(), d);
    }

    #[test]
    fn truncated_capture_still_parses() {
        let d = UdpDatagram::new(53, 5353, 400);
        let mut buf = Vec::new();
        d.write(&mut buf, SRC, DST);
        assert_eq!(UdpDatagram::parse(&buf[..16]).unwrap(), d);
    }

    #[test]
    fn short_header_rejected() {
        assert!(UdpDatagram::parse(&[0; 7]).is_err());
    }

    #[test]
    fn bogus_length_rejected() {
        let mut buf = vec![0, 1, 0, 2, 0, 3, 0, 0]; // length field = 3 < 8
        buf[5] = 3;
        assert!(UdpDatagram::parse(&buf).is_err());
    }
}
