//! IPv4 packets (20-byte header, no options, DF always set).

use crate::checksum::Checksum;
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;
use crate::PacketError;
use std::net::Ipv4Addr;

/// IP protocol numbers the pipeline distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProto {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
}

impl IpProto {
    /// The protocol field value.
    pub fn number(self) -> u8 {
        match self {
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
        }
    }
}

/// Transport payload of an IPv4 packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpPayload {
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A UDP datagram.
    Udp(UdpDatagram),
    /// Any other protocol, length-only.
    Other {
        /// IP protocol number.
        proto: u8,
        /// Payload length in bytes.
        len: u16,
    },
}

impl IpPayload {
    /// On-wire length of the transport payload.
    pub fn wire_len(&self) -> usize {
        match self {
            IpPayload::Tcp(t) => t.wire_len(),
            IpPayload::Udp(u) => u.wire_len(),
            IpPayload::Other { len, .. } => usize::from(*len),
        }
    }

    fn proto_number(&self) -> u8 {
        match self {
            IpPayload::Tcp(_) => 6,
            IpPayload::Udp(_) => 17,
            IpPayload::Other { proto, .. } => *proto,
        }
    }
}

/// An IPv4 packet with one of the modeled transport payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Packet {
    /// Identification field (used by some dedup heuristics).
    pub id: u16,
    /// Time to live.
    pub ttl: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Transport payload.
    pub payload: IpPayload,
}

/// IPv4 header length (no options).
pub const IPV4_HEADER_LEN: usize = 20;

impl Ipv4Packet {
    /// Wraps a TCP segment.
    pub fn tcp(src: Ipv4Addr, dst: Ipv4Addr, seg: TcpSegment) -> Self {
        Ipv4Packet {
            id: 0,
            ttl: 64,
            src,
            dst,
            payload: IpPayload::Tcp(seg),
        }
    }

    /// Wraps a UDP datagram.
    pub fn udp(src: Ipv4Addr, dst: Ipv4Addr, d: UdpDatagram) -> Self {
        Ipv4Packet {
            id: 0,
            ttl: 64,
            src,
            dst,
            payload: IpPayload::Udp(d),
        }
    }

    /// Total on-wire length including the IP header.
    pub fn wire_len(&self) -> usize {
        IPV4_HEADER_LEN + self.payload.wire_len()
    }

    /// Serializes the packet (header checksum computed; DF set).
    pub fn write(&self, out: &mut Vec<u8>) {
        let start = out.len();
        let total_len = self.wire_len() as u16;
        out.push(0x45); // version 4, IHL 5
        out.push(0); // DSCP/ECN
        out.extend_from_slice(&total_len.to_be_bytes());
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&0x4000u16.to_be_bytes()); // flags: DF
        out.push(self.ttl);
        out.push(self.payload.proto_number());
        out.extend_from_slice(&[0, 0]); // header checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        let sum = {
            let mut ck = Checksum::new();
            ck.add_bytes(&out[start..start + IPV4_HEADER_LEN]);
            ck.finish()
        };
        out[start + 10] = (sum >> 8) as u8;
        out[start + 11] = sum as u8;
        match &self.payload {
            IpPayload::Tcp(t) => t.write(out, self.src, self.dst),
            IpPayload::Udp(u) => u.write(out, self.src, self.dst),
            IpPayload::Other { len, .. } => out.resize(out.len() + usize::from(*len), 0),
        }
    }

    /// Parses an IPv4 packet. `bytes` may be snap-truncated below the IP
    /// header; the header's total-length field determines true payload sizes.
    pub fn parse(bytes: &[u8]) -> Result<Self, PacketError> {
        if bytes.len() < IPV4_HEADER_LEN {
            return Err(PacketError::Truncated {
                layer: "ipv4",
                needed: IPV4_HEADER_LEN,
                got: bytes.len(),
            });
        }
        if bytes[0] >> 4 != 4 {
            return Err(PacketError::Unsupported { what: "ip version" });
        }
        let ihl = usize::from(bytes[0] & 0x0f) * 4;
        if ihl != IPV4_HEADER_LEN {
            return Err(PacketError::Unsupported { what: "ip options" });
        }
        // Header checksum must verify whenever the full header is present.
        let mut ck = Checksum::new();
        ck.add_bytes(&bytes[..IPV4_HEADER_LEN]);
        if ck.finish() != 0 {
            return Err(PacketError::BadChecksum { layer: "ipv4" });
        }
        let total_len = usize::from(u16::from_be_bytes([bytes[2], bytes[3]]));
        if total_len < ihl {
            return Err(PacketError::Unsupported {
                what: "ip total length < header",
            });
        }
        let id = u16::from_be_bytes([bytes[4], bytes[5]]);
        let ttl = bytes[8];
        let proto = bytes[9];
        let src = Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]);
        let dst = Ipv4Addr::new(bytes[16], bytes[17], bytes[18], bytes[19]);
        let transport_wire_len = total_len - ihl;
        let avail = &bytes[IPV4_HEADER_LEN..bytes.len().min(IPV4_HEADER_LEN + transport_wire_len)];
        let payload = match proto {
            6 => IpPayload::Tcp(TcpSegment::parse(avail, transport_wire_len)?),
            17 => IpPayload::Udp(UdpDatagram::parse(avail)?),
            other => IpPayload::Other {
                proto: other,
                len: transport_wire_len as u16,
            },
        };
        Ok(Ipv4Packet {
            id,
            ttl,
            src,
            dst,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 5, 5, 5);
    const DST: Ipv4Addr = Ipv4Addr::new(128, 32, 1, 1);

    #[test]
    fn tcp_roundtrip() {
        let p = Ipv4Packet::tcp(SRC, DST, TcpSegment::data(5000, 80, 1, 1, 1000));
        let mut buf = Vec::new();
        p.write(&mut buf);
        assert_eq!(buf.len(), p.wire_len());
        assert_eq!(Ipv4Packet::parse(&buf).unwrap(), p);
    }

    #[test]
    fn udp_roundtrip() {
        let p = Ipv4Packet::udp(SRC, DST, UdpDatagram::new(2222, 2222, 90));
        let mut buf = Vec::new();
        p.write(&mut buf);
        assert_eq!(Ipv4Packet::parse(&buf).unwrap(), p);
    }

    #[test]
    fn other_proto_roundtrip() {
        let p = Ipv4Packet {
            id: 77,
            ttl: 3,
            src: SRC,
            dst: DST,
            payload: IpPayload::Other { proto: 1, len: 64 },
        };
        let mut buf = Vec::new();
        p.write(&mut buf);
        assert_eq!(Ipv4Packet::parse(&buf).unwrap(), p);
    }

    #[test]
    fn snap_truncation_recovers_headers() {
        // A 1460-byte TCP segment snapped at 64 bytes of IP payload.
        let p = Ipv4Packet::tcp(SRC, DST, TcpSegment::data(5000, 80, 900, 1, 1460));
        let mut buf = Vec::new();
        p.write(&mut buf);
        let snapped = &buf[..IPV4_HEADER_LEN + 64];
        assert_eq!(Ipv4Packet::parse(snapped).unwrap(), p);
    }

    #[test]
    fn header_corruption_detected() {
        let p = Ipv4Packet::udp(SRC, DST, UdpDatagram::new(1, 2, 3));
        let mut buf = Vec::new();
        p.write(&mut buf);
        buf[8] ^= 0xff; // ttl
        assert_eq!(
            Ipv4Packet::parse(&buf),
            Err(PacketError::BadChecksum { layer: "ipv4" })
        );
    }

    #[test]
    fn version_check() {
        let mut buf = vec![0x65; 20];
        assert!(matches!(
            Ipv4Packet::parse(&buf),
            Err(PacketError::Unsupported { .. })
        ));
        buf[0] = 0x46; // v4 but IHL 6 (options)
        assert!(matches!(
            Ipv4Packet::parse(&buf),
            Err(PacketError::Unsupported { .. })
        ));
    }
}
