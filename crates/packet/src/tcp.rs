//! TCP segments.
//!
//! Payload *content* is never inspected by any Jigsaw analysis — only
//! sequence ranges matter — so segments carry a `payload_len` and serialize a
//! deterministic zero-fill. This keeps traces compact and, crucially, makes
//! parsing robust to snap-length truncation: the true payload length is
//! recovered from the IP total-length field even when the captured bytes
//! stop at the snap limit (exactly how Jigsaw handles jigdump's ~200-byte
//! capture window, paper §5).

use crate::checksum::Checksum;
use crate::PacketError;
use std::net::Ipv4Addr;

/// TCP header flags (the subset the reconstruction uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags {
    /// Synchronize (connection setup).
    pub syn: bool,
    /// Acknowledgment field significant.
    pub ack: bool,
    /// Finish (orderly teardown).
    pub fin: bool,
    /// Reset.
    pub rst: bool,
    /// Push.
    pub psh: bool,
}

impl TcpFlags {
    fn to_byte(self) -> u8 {
        (u8::from(self.fin))
            | (u8::from(self.syn) << 1)
            | (u8::from(self.rst) << 2)
            | (u8::from(self.psh) << 3)
            | (u8::from(self.ack) << 4)
    }

    fn from_byte(b: u8) -> Self {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A TCP segment: full header semantics, zero-filled payload of known length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or the SYN/FIN).
    pub seq: u32,
    /// Acknowledgment number (valid when `flags.ack`).
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
    /// MSS option (emitted on SYN segments only).
    pub mss: Option<u16>,
    /// Payload length in bytes (content is zero-fill on the wire).
    pub payload_len: u16,
}

impl TcpSegment {
    /// A SYN segment opening a connection.
    pub fn syn(src_port: u16, dst_port: u16, seq: u32, mss: u16) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack: 0,
            flags: TcpFlags {
                syn: true,
                ..Default::default()
            },
            window: 65535,
            mss: Some(mss),
            payload_len: 0,
        }
    }

    /// A SYN-ACK answering `syn`.
    pub fn syn_ack(syn: &TcpSegment, seq: u32, mss: u16) -> Self {
        TcpSegment {
            src_port: syn.dst_port,
            dst_port: syn.src_port,
            seq,
            ack: syn.seq.wrapping_add(1),
            flags: TcpFlags {
                syn: true,
                ack: true,
                ..Default::default()
            },
            window: 65535,
            mss: Some(mss),
            payload_len: 0,
        }
    }

    /// A data segment (ACK flag set, as in any established-state segment).
    pub fn data(src_port: u16, dst_port: u16, seq: u32, ack: u32, len: u16) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags: TcpFlags {
                ack: true,
                psh: len > 0,
                ..Default::default()
            },
            window: 65535,
            mss: None,
            payload_len: len,
        }
    }

    /// A pure acknowledgment.
    pub fn pure_ack(src_port: u16, dst_port: u16, seq: u32, ack: u32) -> Self {
        Self::data(src_port, dst_port, seq, ack, 0)
    }

    /// Header length in bytes (20, or 24 with the MSS option).
    pub fn header_len(&self) -> usize {
        if self.mss.is_some() {
            24
        } else {
            20
        }
    }

    /// Total on-wire length: header + payload.
    pub fn wire_len(&self) -> usize {
        self.header_len() + usize::from(self.payload_len)
    }

    /// Sequence space consumed: payload bytes plus one for SYN and FIN.
    pub fn seq_space(&self) -> u32 {
        u32::from(self.payload_len) + u32::from(self.flags.syn) + u32::from(self.flags.fin)
    }

    /// The sequence number just past this segment.
    pub fn seq_end(&self) -> u32 {
        self.seq.wrapping_add(self.seq_space())
    }

    /// Serializes (header + zero payload) with a valid checksum for the
    /// `src`/`dst` pseudo-header.
    pub fn write(&self, out: &mut Vec<u8>, src: Ipv4Addr, dst: Ipv4Addr) {
        let start = out.len();
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        let data_offset_words = (self.header_len() / 4) as u8;
        out.push(data_offset_words << 4);
        out.push(self.flags.to_byte());
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&[0, 0]); // urgent pointer
        if let Some(mss) = self.mss {
            out.push(2); // kind: MSS
            out.push(4); // length
            out.extend_from_slice(&mss.to_be_bytes());
        }
        out.resize(out.len() + usize::from(self.payload_len), 0);

        let mut ck = Checksum::new();
        ck.add_bytes(&src.octets());
        ck.add_bytes(&dst.octets());
        ck.add_u16(6); // protocol
        ck.add_u16(self.wire_len() as u16);
        ck.add_bytes(&out[start..]);
        let sum = ck.finish();
        out[start + 16] = (sum >> 8) as u8;
        out[start + 17] = sum as u8;
    }

    /// Parses a TCP segment.
    ///
    /// `wire_len` is the segment length according to the enclosing IP header;
    /// `bytes` may be shorter (snap truncation), in which case the checksum
    /// is not verifiable and is skipped — headers are still recovered.
    pub fn parse(bytes: &[u8], wire_len: usize) -> Result<Self, PacketError> {
        if bytes.len() < 20 {
            return Err(PacketError::Truncated {
                layer: "tcp",
                needed: 20,
                got: bytes.len(),
            });
        }
        let src_port = u16::from_be_bytes([bytes[0], bytes[1]]);
        let dst_port = u16::from_be_bytes([bytes[2], bytes[3]]);
        let seq = u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        let ack = u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        let header_len = usize::from(bytes[12] >> 4) * 4;
        if !(20..=60).contains(&header_len) {
            return Err(PacketError::Unsupported {
                what: "tcp data offset",
            });
        }
        if wire_len < header_len {
            return Err(PacketError::Truncated {
                layer: "tcp",
                needed: header_len,
                got: wire_len,
            });
        }
        let flags = TcpFlags::from_byte(bytes[13]);
        let window = u16::from_be_bytes([bytes[14], bytes[15]]);
        // Scan options (present bytes only) for MSS.
        let mut mss = None;
        if header_len > 20 && bytes.len() >= header_len {
            let mut opts = &bytes[20..header_len];
            while let [kind, rest @ ..] = opts {
                match kind {
                    0 => break,
                    1 => opts = rest,
                    2 => {
                        if rest.len() >= 3 && rest[0] == 4 {
                            mss = Some(u16::from_be_bytes([rest[1], rest[2]]));
                        }
                        break;
                    }
                    _ => {
                        if rest.is_empty() || usize::from(rest[0]) < 2 {
                            break;
                        }
                        let skip = usize::from(rest[0]) - 1;
                        if skip > rest.len() {
                            break;
                        }
                        opts = &rest[skip..];
                    }
                }
            }
        }
        Ok(TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            mss,
            payload_len: (wire_len - header_len) as u16,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::Checksum;
    use proptest::prelude::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(172, 16, 4, 2);

    fn roundtrip(seg: TcpSegment) {
        let mut buf = Vec::new();
        seg.write(&mut buf, SRC, DST);
        assert_eq!(buf.len(), seg.wire_len());
        let back = TcpSegment::parse(&buf, buf.len()).unwrap();
        assert_eq!(back, seg);
    }

    #[test]
    fn syn_roundtrip() {
        roundtrip(TcpSegment::syn(5000, 80, 12345, 1460));
    }

    #[test]
    fn data_roundtrip() {
        roundtrip(TcpSegment::data(5000, 80, 1, 1, 1460));
        roundtrip(TcpSegment::pure_ack(80, 5000, 1, 1461));
    }

    #[test]
    fn fin_consumes_seq_space() {
        let mut seg = TcpSegment::data(1, 2, 100, 1, 10);
        seg.flags.fin = true;
        assert_eq!(seg.seq_space(), 11);
        assert_eq!(seg.seq_end(), 111);
        let syn = TcpSegment::syn(1, 2, 7, 1460);
        assert_eq!(syn.seq_space(), 1);
    }

    #[test]
    fn checksum_verifies() {
        let seg = TcpSegment::data(5000, 80, 99, 42, 100);
        let mut buf = Vec::new();
        seg.write(&mut buf, SRC, DST);
        // Recompute including pseudo-header: must be zero.
        let mut ck = Checksum::new();
        ck.add_bytes(&SRC.octets());
        ck.add_bytes(&DST.octets());
        ck.add_u16(6);
        ck.add_u16(buf.len() as u16);
        ck.add_bytes(&buf);
        assert_eq!(ck.finish(), 0);
    }

    #[test]
    fn snap_truncated_parse_recovers_headers() {
        let seg = TcpSegment::data(5000, 80, 7, 9, 1400);
        let mut buf = Vec::new();
        seg.write(&mut buf, SRC, DST);
        // Snap to 60 bytes, but tell the parser the true wire length.
        let back = TcpSegment::parse(&buf[..60], buf.len()).unwrap();
        assert_eq!(back, seg);
    }

    #[test]
    fn too_short_rejected() {
        assert!(TcpSegment::parse(&[0; 19], 19).is_err());
    }

    #[test]
    fn syn_ack_mirrors_ports() {
        let syn = TcpSegment::syn(4321, 443, 1000, 1460);
        let sa = TcpSegment::syn_ack(&syn, 5555, 1460);
        assert_eq!(sa.src_port, 443);
        assert_eq!(sa.dst_port, 4321);
        assert_eq!(sa.ack, 1001);
        assert!(sa.flags.syn && sa.flags.ack);
    }

    proptest! {
        #[test]
        fn arbitrary_roundtrip(src_port: u16, dst_port: u16, seq: u32, ackn: u32,
                               window: u16, len in 0u16..1460,
                               syn: bool, ackf: bool, fin: bool, rst: bool, psh: bool,
                               mss in proptest::option::of(500u16..1500)) {
            let seg = TcpSegment {
                src_port, dst_port, seq, ack: ackn,
                flags: TcpFlags { syn, ack: ackf, fin, rst, psh },
                window,
                mss,
                payload_len: len,
            };
            let mut buf = Vec::new();
            seg.write(&mut buf, SRC, DST);
            prop_assert_eq!(TcpSegment::parse(&buf, buf.len()).unwrap(), seg);
        }
    }
}
