//! # jigsaw-packet
//!
//! Minimal network- and transport-layer packet model carried inside 802.11
//! data frames: LLC/SNAP encapsulation, ARP, IPv4, UDP and TCP.
//!
//! Jigsaw's transport reconstruction (paper §5.2) needs exactly this much:
//! enough header structure to identify flows (addresses + ports), follow TCP
//! sequence/acknowledgment numbers, and recognize ARP broadcasts; payload
//! *content* is irrelevant, only lengths matter. Checksums are real
//! (one's-complement, RFC 1071) so that corruption in the simulated capture
//! path is observable at every layer.
//!
//! Implemented: LLC/SNAP (RFC 1042), ARP request/reply for IPv4-over-802.x,
//! IPv4 (no options, no fragmentation — DF is always set, as in the paper's
//! enterprise traffic), UDP, TCP (flags, MSS option only).
//! Omitted: IPv6, ICMP, IP options, TCP SACK/timestamps/window-scale.

pub mod arp;
pub mod ipv4;
pub mod llc;
pub mod tcp;
pub mod udp;

pub mod checksum;

pub use arp::{ArpOp, ArpPacket};
pub use ipv4::{IpProto, Ipv4Packet};
pub use llc::{EtherType, LLC_SNAP_LEN};
pub use tcp::{TcpFlags, TcpSegment};
pub use udp::UdpDatagram;

use std::fmt;
use std::net::Ipv4Addr;

/// Errors from packet parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// Input shorter than the mandatory header.
    Truncated {
        /// What was being parsed.
        layer: &'static str,
        /// Bytes required.
        needed: usize,
        /// Bytes present.
        got: usize,
    },
    /// A checksum failed verification.
    BadChecksum {
        /// Which layer's checksum failed.
        layer: &'static str,
    },
    /// Unsupported version / ethertype / header shape.
    Unsupported {
        /// What was unsupported.
        what: &'static str,
    },
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated { layer, needed, got } => {
                write!(f, "{layer}: truncated (need {needed}, got {got})")
            }
            PacketError::BadChecksum { layer } => write!(f, "{layer}: bad checksum"),
            PacketError::Unsupported { what } => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for PacketError {}

/// A fully decoded MSDU (the body of an 802.11 data frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msdu {
    /// An ARP packet (always LLC/SNAP-encapsulated on 802.11).
    Arp(ArpPacket),
    /// An IPv4 packet.
    Ipv4(Ipv4Packet),
    /// Anything else — preserved as raw bytes after the LLC header.
    Other {
        /// The SNAP ethertype.
        ethertype: u16,
        /// Raw payload.
        payload: Vec<u8>,
    },
}

impl Msdu {
    /// Serializes the MSDU including its LLC/SNAP header — the exact byte
    /// string that becomes an 802.11 data-frame body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Msdu::Arp(arp) => {
                llc::write_llc_snap(&mut out, EtherType::ARP.0);
                arp.write(&mut out);
            }
            Msdu::Ipv4(ip) => {
                llc::write_llc_snap(&mut out, EtherType::IPV4.0);
                ip.write(&mut out);
            }
            Msdu::Other { ethertype, payload } => {
                llc::write_llc_snap(&mut out, *ethertype);
                out.extend_from_slice(payload);
            }
        }
        out
    }

    /// Parses an 802.11 data-frame body (LLC/SNAP + network packet).
    pub fn parse(bytes: &[u8]) -> Result<Msdu, PacketError> {
        let (ethertype, rest) = llc::parse_llc_snap(bytes)?;
        match ethertype {
            x if x == EtherType::ARP.0 => Ok(Msdu::Arp(ArpPacket::parse(rest)?)),
            x if x == EtherType::IPV4.0 => Ok(Msdu::Ipv4(Ipv4Packet::parse(rest)?)),
            other => Ok(Msdu::Other {
                ethertype: other,
                payload: rest.to_vec(),
            }),
        }
    }

    /// The flow 5-tuple if this is a TCP or UDP packet:
    /// `(src_ip, src_port, dst_ip, dst_port, proto)`.
    pub fn five_tuple(&self) -> Option<(Ipv4Addr, u16, Ipv4Addr, u16, IpProto)> {
        if let Msdu::Ipv4(ip) = self {
            match &ip.payload {
                ipv4::IpPayload::Tcp(t) => {
                    Some((ip.src, t.src_port, ip.dst, t.dst_port, IpProto::Tcp))
                }
                ipv4::IpPayload::Udp(u) => {
                    Some((ip.src, u.src_port, ip.dst, u.dst_port, IpProto::Udp))
                }
                ipv4::IpPayload::Other { .. } => None,
            }
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msdu_arp_roundtrip() {
        let arp = ArpPacket {
            op: ArpOp::Request,
            sender_mac: [2, 0, 0, 0, 0, 1],
            sender_ip: Ipv4Addr::new(10, 0, 0, 1),
            target_mac: [0; 6],
            target_ip: Ipv4Addr::new(10, 0, 0, 99),
        };
        let m = Msdu::Arp(arp);
        let bytes = m.to_bytes();
        assert_eq!(Msdu::parse(&bytes).unwrap(), m);
    }

    #[test]
    fn msdu_other_roundtrip() {
        let m = Msdu::Other {
            ethertype: 0x86dd,
            payload: vec![1, 2, 3, 4, 5],
        };
        let bytes = m.to_bytes();
        assert_eq!(Msdu::parse(&bytes).unwrap(), m);
    }

    #[test]
    fn five_tuple_extraction() {
        let tcp = TcpSegment::data(1234, 80, 1000, 2000, 512);
        let ip = Ipv4Packet::tcp(
            Ipv4Addr::new(10, 1, 2, 3),
            Ipv4Addr::new(172, 16, 0, 1),
            tcp,
        );
        let m = Msdu::Ipv4(ip);
        let (s, sp, d, dp, proto) = m.five_tuple().unwrap();
        assert_eq!(s, Ipv4Addr::new(10, 1, 2, 3));
        assert_eq!(sp, 1234);
        assert_eq!(d, Ipv4Addr::new(172, 16, 0, 1));
        assert_eq!(dp, 80);
        assert_eq!(proto, IpProto::Tcp);
    }

    #[test]
    fn garbage_rejected() {
        assert!(Msdu::parse(&[]).is_err());
        assert!(Msdu::parse(&[0xaa, 0xaa]).is_err());
    }
}
