//! RFC 1071 one's-complement checksum, shared by IPv4, UDP and TCP.

/// Accumulates 16-bit big-endian words (odd trailing byte padded with zero).
#[derive(Debug, Default, Clone, Copy)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Checksum { sum: 0 }
    }

    /// Feeds raw bytes.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Feeds one 16-bit value.
    pub fn add_u16(&mut self, v: u16) {
        self.sum += u32::from(v);
    }

    /// Feeds one 32-bit value as two 16-bit words.
    pub fn add_u32(&mut self, v: u32) {
        self.add_u16((v >> 16) as u16);
        self.add_u16(v as u16);
    }

    /// Folds carries and returns the one's-complement result.
    pub fn finish(self) -> u16 {
        let mut s = self.sum;
        while s > 0xffff {
            s = (s & 0xffff) + (s >> 16);
        }
        !(s as u16)
    }
}

/// One-shot checksum of a byte slice.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example: 00 01 f2 03 f4 f5 f6 f7 → sum 0xddf2, cksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_padding() {
        assert_eq!(checksum(&[0xff]), !0xff00);
    }

    #[test]
    fn verify_property() {
        // A message with its checksum inserted sums to zero.
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x40, 0x00, 0x40, 0x06];
        let ck = checksum(&data);
        data.extend_from_slice(&ck.to_be_bytes());
        assert_eq!(checksum(&data), 0);
    }

    #[test]
    fn u32_matches_bytes() {
        let mut a = Checksum::new();
        a.add_u32(0xdead_beef);
        let mut b = Checksum::new();
        b.add_bytes(&[0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(a.finish(), b.finish());
    }
}
