//! Compile-time smoke test for the facade's re-export surface.
//!
//! Every `jigsaw::…` path used by `examples/` (plus the core types of each
//! subsystem) is imported here, so removing or renaming a re-export breaks
//! `cargo test` rather than only `cargo build --examples`. The single
//! runtime assertion exercises nothing new — the point is that this file
//! *links*.

// The exact import surface of examples/*.rs and tests/integration.rs.
use jigsaw::analysis::coverage::{pods_subset, radios_of_pods, CoverageAnalysis};
use jigsaw::analysis::dispersion::DispersionAnalysis;
use jigsaw::analysis::interference::InterferenceAnalysis;
use jigsaw::analysis::protection::{throughput_headroom, ProtectionAnalysis};
use jigsaw::analysis::summary::SummaryBuilder;
use jigsaw::analysis::tcploss::tcp_loss_figure;
use jigsaw::core::pipeline::{Pipeline, PipelineConfig};
use jigsaw::ieee80211::PhyRate;
use jigsaw::sim::scenario::ScenarioConfig;
use jigsaw::trace::format::{TraceReader, TraceWriter};
use jigsaw::trace::index::write_index;
use jigsaw::trace::pcap::PcapWriter;
use jigsaw::trace::stream::{MemoryStream, ReaderStream};

// Each subsystem's load-bearing types, beyond what the examples happen to
// touch today.
use jigsaw::core::baseline::{naive_merge, yeo_merge};
use jigsaw::core::jframe::JFrame;
use jigsaw::core::link::exchange::Exchange;
use jigsaw::core::sync::bootstrap::bootstrap;
use jigsaw::core::unify::{MergeConfig, Merger};
use jigsaw::ieee80211::{Channel, MacAddr, SeqNum};
use jigsaw::packet::{Msdu, TcpSegment};
use jigsaw::sim::output::SimOutput;
use jigsaw::trace::{MonitorId, PhyEvent, PhyStatus, RadioId, RadioMeta};

/// Reference the imported items as values/types so nothing is "unused" and
/// every path above must actually resolve.
#[test]
fn facade_surface_resolves() {
    // Function items: taking their address forces resolution + type check.
    let _: fn(usize, usize) -> Vec<usize> = pods_subset;
    let _: fn(&[usize]) -> Vec<usize> = radios_of_pods;
    let _ = tcp_loss_figure as *const ();
    let _ = throughput_headroom as *const ();
    let _ = write_index::<Vec<u8>> as *const ();
    let _ = bootstrap::<Vec<PhyEvent>> as *const ();
    // `impl Trait` parameters prevent naming these as fn pointers; a dead
    // closure still forces full resolution and type-checking.
    let _ = || {
        let _ = naive_merge(Vec::<MemoryStream>::new(), 0, |_: &JFrame| {});
        let _ = yeo_merge(
            Vec::<MemoryStream>::new(),
            &Default::default(),
            &MergeConfig::default(),
            |_: JFrame| {},
        );
    };

    // Types: mention each so the import is load-bearing.
    fn touch<T>() {}
    touch::<CoverageAnalysis>();
    touch::<DispersionAnalysis>();
    touch::<InterferenceAnalysis>();
    touch::<ProtectionAnalysis>();
    touch::<SummaryBuilder>();
    touch::<(Pipeline, PipelineConfig)>();
    touch::<(PhyRate, Channel, MacAddr, SeqNum)>();
    touch::<ScenarioConfig>();
    touch::<(TraceReader<std::io::Empty>, TraceWriter<Vec<u8>>)>();
    touch::<PcapWriter<Vec<u8>>>();
    touch::<ReaderStream<std::io::Empty>>();
    touch::<(Exchange, MergeConfig, Merger<MemoryStream>)>();
    touch::<(Msdu, TcpSegment)>();
    touch::<SimOutput>();
    touch::<(MonitorId, RadioId, RadioMeta, PhyEvent, PhyStatus)>();
}
