//! Workspace-level integration tests: the public facade API exercised the
//! way a downstream user would, spanning simulator → storage → pipeline →
//! analyses.

use jigsaw::analysis::coverage::{pods_subset, radios_of_pods, CoverageAnalysis};
use jigsaw::analysis::dispersion::DispersionAnalysis;
use jigsaw::analysis::summary::SummaryBuilder;
use jigsaw::analysis::tcploss::TcpLossAnalysis;
use jigsaw::core::pipeline::{Pipeline, PipelineConfig};
use jigsaw::sim::scenario::ScenarioConfig;
use jigsaw::trace::format::{TraceReader, TraceWriter};
use jigsaw::trace::stream::ReaderStream;

#[test]
fn facade_quickstart_path() {
    let out = ScenarioConfig::tiny(1).run();
    let (jframes, exchanges, report) =
        Pipeline::run_collect(out.memory_streams(), &PipelineConfig::default()).unwrap();
    assert!(!jframes.is_empty());
    assert!(!exchanges.is_empty());
    assert!(report.transport.flows > 0);
}

#[test]
fn disk_roundtrip_preserves_pipeline_results() {
    // The pipeline must produce identical results whether traces come from
    // memory or from jigdump-format bytes.
    let out = ScenarioConfig::tiny(5).run();

    let mem_report = Pipeline::run(out.memory_streams(), &PipelineConfig::default(), ()).unwrap();

    let mut disk_streams = Vec::new();
    for (r, events) in out.traces.iter().enumerate() {
        let mut w = TraceWriter::create(Vec::new(), out.radio_meta[r], 260).unwrap();
        for e in events {
            w.append(e).unwrap();
        }
        let (bytes, _, _) = w.finish().unwrap();
        disk_streams.push(ReaderStream::new(
            TraceReader::open(std::io::Cursor::new(bytes)).unwrap(),
        ));
    }
    let disk_report = Pipeline::run(disk_streams, &PipelineConfig::default(), ()).unwrap();

    assert_eq!(mem_report.merge.events_in, disk_report.merge.events_in);
    assert_eq!(mem_report.merge.jframes_out, disk_report.merge.jframes_out);
    assert_eq!(mem_report.link.exchanges, disk_report.link.exchanges);
    assert_eq!(
        mem_report.transport.segments,
        disk_report.transport.segments
    );
}

#[test]
fn analyses_compose_over_one_pass() {
    let out = ScenarioConfig::small(9).run();
    let mut summary = SummaryBuilder::new(out.radio_meta.len());
    let mut dispersion = DispersionAnalysis::new();
    let ap_addrs: Vec<_> = out.stations.iter().map(|s| s.addr).collect();
    let lookup = move |sid: u16| ap_addrs[usize::from(sid)];
    let mut coverage = CoverageAnalysis::new(&out.wired, &lookup, 10_000_000);
    let mut tcploss = TcpLossAnalysis::new();

    // One observer tuple, one streaming pass, four analyses.
    Pipeline::run(
        out.memory_streams(),
        &PipelineConfig::default(),
        (&mut summary, &mut dispersion, &mut coverage, &mut tcploss),
    )
    .unwrap();

    let table = summary.finish();
    assert_eq!(table.events_total, out.total_events());
    assert!(table.events_per_jframe > 1.0);

    let fig4 = dispersion.finish();
    assert!(
        fig4.frac_below_20us > 0.8,
        "p<20us {}",
        fig4.frac_below_20us
    );
    assert!(fig4.cdf.len() > 100);

    let fig6 = coverage.finish();
    assert!(fig6.packets > 100);
    assert!(fig6.overall > 0.8, "coverage {}", fig6.overall);

    let fig11 = tcploss.finish();
    assert!(fig11.flows > 0);
    assert!(fig11.loss_cdf.quantile(0.5).unwrap_or(1.0) < 0.2);
}

#[test]
fn pod_reduction_degrades_client_coverage_monotonically() {
    let mut cfg = ScenarioConfig::paper_day(77);
    cfg.day_us = 20_000_000; // 20 s slice keeps this test quick
    let out = cfg.run();
    let ap_addrs: Vec<_> = out.stations.iter().map(|s| s.addr).collect();

    let mut coverages = Vec::new();
    for keep in [39usize, 20, 10] {
        let radios = radios_of_pods(&pods_subset(39, keep));
        let streams: Vec<_> = radios
            .iter()
            .map(|&r| {
                jigsaw::trace::stream::MemoryStream::new(out.radio_meta[r], out.traces[r].clone())
            })
            .collect();
        let ap_addrs = ap_addrs.clone();
        let lookup = move |sid: u16| ap_addrs[usize::from(sid)];
        let mut coverage = CoverageAnalysis::new(&out.wired, &lookup, 10_000_000);
        Pipeline::run(streams, &PipelineConfig::default(), &mut coverage).unwrap();
        coverages.push(coverage.finish().client_coverage);
    }
    // The paper's Figure 7: fewer pods, less client coverage.
    assert!(
        coverages[0] >= coverages[1] && coverages[1] >= coverages[2],
        "coverage not monotone: {coverages:?}"
    );
    assert!(
        coverages[0] - coverages[2] > 0.01,
        "reduction had no effect: {coverages:?}"
    );
}

#[test]
fn merge_runs_faster_than_real_time() {
    // Paper §4 requirement 3: online operation demands faster-than-realtime
    // merging. Even in a debug-unoptimized test build we expect headroom on
    // a quiet trace; release builds are ~20x.
    let mut cfg = ScenarioConfig::small(31);
    cfg.day_us = 20_000_000;
    let out = cfg.run();
    // tidy:allow(wall-clock): measuring wall-clock merge throughput is this test's point
    let t0 = std::time::Instant::now();
    let report = Pipeline::run(out.memory_streams(), &PipelineConfig::default(), ()).unwrap();
    let elapsed = t0.elapsed().as_secs_f64();
    let simulated = out.duration_us as f64 / 1e6;
    assert!(report.merge.jframes_out > 0);
    assert!(
        elapsed < simulated,
        "merge slower than real time: {elapsed:.1}s for {simulated:.1}s of trace"
    );
}
