//! # jigsaw
//!
//! A from-scratch Rust reproduction of **Jigsaw: Solving the Puzzle of
//! Enterprise 802.11 Analysis** (Cheng, Bellardo, Benkö, Snoeren, Voelker,
//! Savage — SIGCOMM 2006): building-scale multi-sniffer trace
//! synchronization, frame unification, and cross-layer reconstruction.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`ieee80211`] — the 802.11b/g frame model (frames, rates, timing, FCS);
//! * [`packet`] — LLC/SNAP, ARP, IPv4, UDP, TCP carried in data frames;
//! * [`trace`] — per-radio PHY event records, the jigdump-style format,
//!   and the on-disk trace corpus (`trace::corpus`): one compressed,
//!   indexed trace per radio plus a manifest and digest, written by
//!   `repro record` and re-merged by `repro merge --corpus`;
//! * [`sim`] — the discrete-event building simulator standing in for the
//!   UCSD CSE deployment (39 pods / 156 radios / 44 APs / diurnal clients);
//! * [`core`] — the paper's contribution: bootstrap synchronization,
//!   continuous clock management, frame unification, link-layer and
//!   transport-layer reconstruction, plus baseline mergers; every driver
//!   takes one [`core::observer::PipelineObserver`] with default-no-op
//!   hooks for jframes, attempts, exchanges, and flows;
//! * [`live`] — online ingest: chunk-fed live sources ([`live::LiveSource`])
//!   and the always-on [`live::LiveMerger`], which unifies streams *while
//!   they are still being written*, emitting jframes continuously with
//!   bounded lag (2×search-window behind the slowest live radio), evicting
//!   stalled radios from the emission horizon after `max_lag_us`, and
//!   re-anchoring drifting clocks on the fly;
//! * [`analysis`] — every table and figure of the paper's evaluation,
//!   each an [`analysis::Analyzer`] (observer → [`analysis::Figure`]),
//!   with [`analysis::Suite`] fanning one streaming pass to all of them.
//!
//! ## Quickstart
//!
//! ```
//! use jigsaw::sim::scenario::ScenarioConfig;
//! use jigsaw::core::pipeline::{Pipeline, PipelineConfig};
//!
//! // Simulate a small building and merge its traces.
//! let out = ScenarioConfig::tiny(42).run();
//! let (jframes, exchanges, report) =
//!     Pipeline::run_collect(out.memory_streams(), &PipelineConfig::default()).unwrap();
//! assert!(report.merge.jframes_out > 0);
//! assert!(!jframes.is_empty());
//! assert!(!exchanges.is_empty());
//! ```
//!
//! Analyses subscribe to the pipeline's streams through one observer —
//! several at once via a tuple, or a whole registered [`analysis::Suite`]:
//!
//! ```
//! use jigsaw::analysis::dispersion::DispersionAnalysis;
//! use jigsaw::analysis::suite::Suite;
//! use jigsaw::core::pipeline::{Pipeline, PipelineConfig};
//!
//! let out = jigsaw::sim::scenario::ScenarioConfig::tiny(42).run();
//! let mut suite = Suite::new().register(DispersionAnalysis::new());
//! Pipeline::run(out.memory_streams(), &PipelineConfig::default(), &mut suite).unwrap();
//! for figure in suite.finish() {
//!     println!("{}\n{}", figure.title(), figure.render());
//!     for record in figure.records() {
//!         println!("record {}.{record}", figure.name());
//!     }
//! }
//! ```
//!
//! The same pipeline runs from disk with window-bounded memory — record a
//! corpus (one compressed, indexed trace per radio), stream it back, and
//! feed any observer (`repro analyze --corpus <dir>` streams the entire
//! figure suite this way, with no `Vec<JFrame>` ever materialized):
//!
//! ```no_run
//! use jigsaw::core::pipeline::{CorpusSource, Pipeline, PipelineConfig};
//! use jigsaw::trace::corpus::{Corpus, CorpusWriter};
//! use std::sync::{atomic::AtomicU64, Arc};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let out = jigsaw::sim::scenario::ScenarioConfig::tiny(42).run();
//! let dir = std::path::Path::new("target/my_corpus");
//! let mut w = CorpusWriter::create(dir, "tiny", 42, 1.0, 65_535, out.duration_us, 0)?;
//! for (meta, trace) in out.radio_meta.iter().zip(&out.traces) {
//!     w.record_radio(*meta, trace.iter())?;
//! }
//! println!("corpus digest {}", w.finish()?.digest);
//!
//! let corpus = Corpus::open(dir)?;
//! let sources: Vec<CorpusSource> = corpus
//!     .sources(Arc::new(AtomicU64::new(0)))?
//!     .into_iter()
//!     .map(CorpusSource)
//!     .collect();
//! // Any observer plugs in here — a Suite streams every paper figure.
//! let mut suite = jigsaw::analysis::Suite::new()
//!     .register(jigsaw::analysis::dispersion::DispersionAnalysis::new());
//! let report = Pipeline::run(sources, &PipelineConfig::default(), &mut suite)?;
//! assert_eq!(report.merge.events_in, corpus.total_events());
//! # Ok(())
//! # }
//! ```
//!
//! Replays need not start at t = 0. A **time-windowed replay** opens each
//! radio at any `[from, to)` interval of the corpus (anchor-universal µs):
//! reads index-seek to the window, the clock bootstrap re-anchors there
//! through the manifest's NTP anchors, and only in-window jframes reach
//! the observer — cost proportional to the window, not the corpus (the
//! CLI spelling is `repro analyze --corpus <dir> --from 3000000 --to
//! 6000000 [--parallel]`, and `repro merge --from/--to --verify` pins the
//! windowed run against the full replay clipped to the same window):
//!
//! ```no_run
//! use jigsaw::core::pipeline::{Pipeline, PipelineConfig, WindowedCorpusSource};
//! use jigsaw::trace::corpus::Corpus;
//! use jigsaw::trace::TimeWindow;
//! use std::sync::{atomic::AtomicU64, Arc};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let corpus = Corpus::open(std::path::Path::new("target/my_corpus"))?;
//! let window = TimeWindow::new(3_000_000, 6_000_000).expect("from < to");
//! let sources: Vec<WindowedCorpusSource> = corpus
//!     .sources(Arc::new(AtomicU64::new(0)))?
//!     .into_iter()
//!     .map(|s| WindowedCorpusSource::new(s, window))
//!     .collect();
//! let cfg = PipelineConfig { window: Some(window), ..PipelineConfig::default() };
//! let mut suite = jigsaw::analysis::Suite::new()
//!     .register(jigsaw::analysis::dispersion::DispersionAnalysis::new());
//! Pipeline::run(sources, &cfg, &mut suite)?; // only [from, to) is analyzed
//! # Ok(())
//! # }
//! ```
//!
//! The corpus need not even be finished: the **live tail driver** merges
//! traces while they are still being written. Each radio file is tailed in
//! arbitrary-size chunks — `ChunkedFileTail::follow` treats EOF as the live
//! edge, picking up the writer's appends on later polls ( `open` is the
//! replay mode for finished recordings, where EOF is the end) — and the
//! always-on merger emits jframes continuously under the bounded-lag
//! contract. The emitted stream is byte-identical to a batch merge of the
//! same events — for every chunking (the CLI spelling is `repro tail
//! --corpus <dir> [--chunk-bytes N] [--verify]`, and CI pins the
//! equivalence at several chunk sizes on both drivers):
//!
//! ```no_run
//! use jigsaw::live::{ChunkedFileTail, LiveConfig, LiveMerger, SystemClock};
//!
//! # fn capture_is_over() -> bool { true }
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut lm = LiveMerger::new(LiveConfig::default(), SystemClock::new());
//! for name in ["r000.jigt", "r001.jigt"] {
//!     lm.add_source(ChunkedFileTail::follow(std::path::Path::new(name), 64 * 1024)?);
//! }
//! let mut on_jframe = |jframe: jigsaw::core::JFrame| {
//!     // Arrives in timestamp order, no later than 2×search_window
//!     // behind the slowest live radio.
//!     let _ = jframe.ts;
//! };
//! while lm.step(&mut on_jframe)? {
//!     if capture_is_over() {
//!         // Writers are done: let the tails drain to their real end.
//!         lm.sources_mut().for_each(ChunkedFileTail::stop);
//!     }
//! }
//! let report = lm.finish(on_jframe)?;
//! println!("p99 emission lag: {} µs", report.lag_quantile(0.99));
//! # Ok(())
//! # }
//! ```
//!
//! ## Adversarial scenarios and the golden sweep
//!
//! [`sim::spec::ScenarioSpec`] composes a base [`sim::scenario::ScenarioConfig`]
//! with orthogonal perturbations — roaming, hidden terminals, co-channel
//! interference with mid-run re-allocation, session churn, QoS mixes —
//! into a world that is a pure function of (spec, seed):
//!
//! ```
//! use jigsaw::sim::spec::{Roaming, ScenarioSpec};
//! use jigsaw::sim::scenario::{ScenarioConfig, TruthConfig};
//!
//! let base = ScenarioConfig {
//!     day_us: 2_000_000,
//!     truth: TruthConfig::Off,
//!     ..ScenarioConfig::tiny(0)
//! };
//! let spec = ScenarioSpec {
//!     roaming: Some(Roaming { roamers: 2, dwell_us: 600_000 }),
//!     ..ScenarioSpec::plain("my_roaming", base)
//! };
//! let out = spec.run(7); // same spec + same seed ⇒ byte-identical traces
//! assert!(out.total_events() > 0);
//! ```
//!
//! `ScenarioSpec::sweep_matrix()` names six shipped adversarial shapes
//! (`roaming`, `hidden_terminal`, `cochannel_realloc`, `protection_mix`,
//! `qos_mix`, `error_stress`). `repro sweep` runs each end-to-end —
//! record to disk, full merges on both drivers from memory and disk, the
//! figure suite serial vs sharded, a windowed replay — and diffs the
//! surviving digests + `record` lines against per-scenario golden files
//! under `.github/golden/sweep/` (re-bless intentional changes with
//! `repro sweep --bless`; see `.github/golden/README.md`).

pub use jigsaw_analysis as analysis;
pub use jigsaw_core as core;
pub use jigsaw_diagnosis as diagnosis;
pub use jigsaw_ieee80211 as ieee80211;
pub use jigsaw_live as live;
pub use jigsaw_packet as packet;
pub use jigsaw_sim as sim;
pub use jigsaw_trace as trace;
