//! # jigsaw
//!
//! A from-scratch Rust reproduction of **Jigsaw: Solving the Puzzle of
//! Enterprise 802.11 Analysis** (Cheng, Bellardo, Benkö, Snoeren, Voelker,
//! Savage — SIGCOMM 2006): building-scale multi-sniffer trace
//! synchronization, frame unification, and cross-layer reconstruction.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`ieee80211`] — the 802.11b/g frame model (frames, rates, timing, FCS);
//! * [`packet`] — LLC/SNAP, ARP, IPv4, UDP, TCP carried in data frames;
//! * [`trace`] — per-radio PHY event records and the jigdump-style format;
//! * [`sim`] — the discrete-event building simulator standing in for the
//!   UCSD CSE deployment (39 pods / 156 radios / 44 APs / diurnal clients);
//! * [`core`] — the paper's contribution: bootstrap synchronization,
//!   continuous clock management, frame unification, link-layer and
//!   transport-layer reconstruction, plus baseline mergers;
//! * [`analysis`] — every table and figure of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use jigsaw::sim::scenario::ScenarioConfig;
//! use jigsaw::core::pipeline::{Pipeline, PipelineConfig};
//!
//! // Simulate a small building and merge its traces.
//! let out = ScenarioConfig::tiny(42).run();
//! let (jframes, exchanges, report) =
//!     Pipeline::run_collect(out.memory_streams(), &PipelineConfig::default()).unwrap();
//! assert!(report.merge.jframes_out > 0);
//! assert!(!jframes.is_empty());
//! assert!(!exchanges.is_empty());
//! ```

pub use jigsaw_analysis as analysis;
pub use jigsaw_core as core;
pub use jigsaw_ieee80211 as ieee80211;
pub use jigsaw_packet as packet;
pub use jigsaw_sim as sim;
pub use jigsaw_trace as trace;
