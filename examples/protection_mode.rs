//! Protection-mode study: the paper's §7.3 overprotective-AP analysis on a
//! mixed 802.11b/g population, including the footnote-7 throughput headroom
//! arithmetic.
//!
//! ```sh
//! cargo run --release --example protection_mode [-- <seed>]
//! ```

// An example's output *is* stdout; the workspace denial targets library code.
#![allow(clippy::print_stdout, clippy::print_stderr)]
use jigsaw::analysis::protection::{throughput_headroom, ProtectionAnalysis};
use jigsaw::core::pipeline::{Pipeline, PipelineConfig};
use jigsaw::ieee80211::PhyRate;
use jigsaw::sim::scenario::ScenarioConfig;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    // A small building with a meaningful 802.11b population so APs enable
    // protection, plus a conservative (paper-like) switch-off timeout.
    let mut cfg = ScenarioConfig::small(seed);
    cfg.n_clients = 12;
    cfg.b_only_fraction = 0.25;
    cfg.day_us = 60_000_000;
    cfg.protection_timeout_us = 30_000_000; // "one hour", compressed
    let day = cfg.day_us;
    let out = cfg.run();

    let bin = day / 12;
    let practical = 2_000_000; // the paper's "one minute", compressed
    let mut analysis = ProtectionAnalysis::new(0, bin, practical);
    Pipeline::run(
        out.memory_streams(),
        &PipelineConfig::default(),
        &mut analysis,
    )
    .expect("pipeline");
    let fig = analysis.finish();
    println!("{}", fig.render());

    println!("footnote-7 arithmetic (protected vs bare exchange airtime):");
    for rate in [PhyRate::R12, PhyRate::R24, PhyRate::R54] {
        println!(
            "  {rate}: headroom {:.2}x for 1500-byte frames",
            throughput_headroom(rate, 1500)
        );
    }
    let overprotective_bins = fig.bins.iter().filter(|b| b.overprotective_aps > 0).count();
    println!(
        "\n{}/{} bins saw overprotective APs; peak g-clients behind them: {}",
        overprotective_bins,
        fig.bins.len(),
        fig.bins
            .iter()
            .map(|b| b.g_clients_on_overprotective)
            .max()
            .unwrap_or(0)
    );
}
