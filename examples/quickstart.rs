//! Quickstart: simulate a small 802.11 building, merge its monitor traces
//! with Jigsaw, and look at what came out.
//!
//! ```sh
//! cargo run --release --example quickstart [-- <seed>]
//! ```

// An example's output *is* stdout; the workspace denial targets library code.
#![allow(clippy::print_stdout, clippy::print_stderr)]
use jigsaw::core::pipeline::{Pipeline, PipelineConfig};
use jigsaw::sim::scenario::ScenarioConfig;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // 1. Simulate a small production WLAN: APs, clients, TCP traffic, and a
    //    handful of passive monitor pods with drifting clocks.
    let out = ScenarioConfig::small(seed).run();
    println!(
        "simulated {:.0}s: {} capture events across {} radios, {} wired packets, {} TCP flows",
        out.duration_us as f64 / 1e6,
        out.total_events(),
        out.radio_meta.len(),
        out.wired.len(),
        out.stats.flows_opened,
    );

    // 2. Run the Jigsaw pipeline: bootstrap sync → unification →
    //    link-layer → transport reconstruction, in one streaming pass.
    let (jframes, exchanges, report) =
        Pipeline::run_collect(out.memory_streams(), &PipelineConfig::default()).expect("pipeline");

    println!("\n-- synchronization --");
    println!(
        "bootstrap: {} graph components from {} reference sets ({} coarse radios)",
        report.bootstrap.components,
        report.bootstrap.sets_used,
        report.bootstrap.coarse.iter().filter(|&&c| c).count()
    );
    println!(
        "merge: {} events -> {} jframes ({} clock corrections applied)",
        report.merge.events_in, report.merge.jframes_out, report.merge.resyncs
    );
    let mut disp: Vec<u64> = jframes
        .iter()
        .filter(|j| j.valid && j.instance_count() >= 2)
        .map(|j| j.dispersion)
        .collect();
    disp.sort_unstable();
    if !disp.is_empty() {
        println!(
            "group dispersion: p50={}us p99={}us over {} multi-instance jframes",
            disp[disp.len() / 2],
            disp[disp.len() * 99 / 100],
            disp.len()
        );
    }

    println!("\n-- link layer --");
    println!(
        "{} transmission attempts -> {} frame exchanges ({} delivered, {} ambiguous, {:.2}% inferred)",
        report.link.attempts,
        report.link.exchanges,
        report.link.delivered,
        report.link.ambiguous,
        100.0 * report.link.attempts_inferred as f64 / report.link.attempts.max(1) as f64
    );
    let retried = exchanges.iter().filter(|x| x.retries() > 0).count();
    println!("{retried} exchanges needed link-layer retransmissions");

    println!("\n-- transport layer --");
    println!(
        "{} TCP flows ({} handshake-complete); {} segments",
        report.transport.flows, report.transport.established, report.transport.segments
    );
    println!(
        "losses: {} wireless / {} wired; {} ambiguous deliveries proven by covering ACKs; {} packets delivered unobserved",
        report.transport.wireless_losses,
        report.transport.wired_losses,
        report.transport.ambiguous_resolved,
        report.transport.covered_holes
    );
    for f in report.flows.iter().take(5) {
        println!(
            "  flow {:?} -> {:?}: {} segs, loss rate {:.3}, rtt {:?}us",
            f.key.a,
            f.key.b,
            f.segments,
            f.loss_rate,
            f.rtt_mean_us.map(|r| r as u64)
        );
    }
}
