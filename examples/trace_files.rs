//! Trace storage round trip: write simulated captures to jigdump-format
//! files on disk (one per radio, with metadata indexes), read them back as
//! streams, run the pipeline from disk, and export one radio's view to
//! pcap for wireshark.
//!
//! ```sh
//! cargo run --release --example trace_files [-- <output-dir>]
//! ```

// An example's output *is* stdout; the workspace denial targets library code.
#![allow(clippy::print_stdout, clippy::print_stderr)]
use jigsaw::core::pipeline::{Pipeline, PipelineConfig};
use jigsaw::sim::scenario::ScenarioConfig;
use jigsaw::trace::format::{TraceReader, TraceWriter};
use jigsaw::trace::index::write_index;
use jigsaw::trace::pcap::PcapWriter;
use jigsaw::trace::stream::ReaderStream;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    let dir = PathBuf::from(
        std::env::args()
            .nth(1)
            .unwrap_or_else(|| "target/jigsaw-traces".into()),
    );
    std::fs::create_dir_all(&dir)?;

    // 1. Simulate and persist per-radio traces, exactly as jigdump would:
    //    a data file plus a metadata index per radio.
    let out = ScenarioConfig::small(11).run();
    let mut raw_bytes = 0u64;
    let mut file_bytes = 0u64;
    for (r, events) in out.traces.iter().enumerate() {
        let meta = out.radio_meta[r];
        let path = dir.join(format!("radio{r:03}.jigt"));
        let mut w =
            TraceWriter::create(BufWriter::new(File::create(&path)?), meta, 260).expect("create");
        for ev in events {
            raw_bytes += 32 + ev.bytes.len() as u64;
            w.append(ev).expect("append");
        }
        let (sink, index, _total) = w.finish().expect("finish");
        drop(sink);
        let idx_path = dir.join(format!("radio{r:03}.jigx"));
        write_index(BufWriter::new(File::create(&idx_path)?), &index)?;
        file_bytes += std::fs::metadata(&path)?.len();
    }
    println!(
        "wrote {} radio traces to {} ({} events, {:.1} MB raw -> {:.1} MB compressed)",
        out.traces.len(),
        dir.display(),
        out.total_events(),
        raw_bytes as f64 / 1e6,
        file_bytes as f64 / 1e6
    );

    // 2. Re-open the traces from disk and run the pipeline on them.
    let mut streams = Vec::new();
    for r in 0..out.traces.len() {
        let path = dir.join(format!("radio{r:03}.jigt"));
        let reader = TraceReader::open(BufReader::new(File::open(&path)?)).expect("open");
        streams.push(ReaderStream::new(reader));
    }
    let report = Pipeline::run(streams, &PipelineConfig::default(), ()).expect("pipeline");
    println!(
        "pipeline from disk: {} events -> {} jframes, {} exchanges, {} TCP flows",
        report.merge.events_in,
        report.merge.jframes_out,
        report.link.exchanges,
        report.transport.flows
    );

    // 3. Export the busiest radio's raw view as pcap for wireshark/tcpdump.
    let busiest = out
        .traces
        .iter()
        .enumerate()
        .max_by_key(|(_, t)| t.len())
        .map(|(i, _)| i)
        .unwrap_or(0);
    let pcap_path = dir.join(format!("radio{busiest:03}.pcap"));
    let mut pw = PcapWriter::create(BufWriter::new(File::create(&pcap_path)?))?;
    for ev in &out.traces[busiest] {
        pw.write_event(ev)?;
    }
    let frames = pw.frames();
    pw.finish()?;
    println!(
        "exported radio {busiest} to {} ({frames} frames) — open it in wireshark",
        pcap_path.display()
    );
    Ok(())
}
