//! Interference study: the paper's §7.2 workflow on a hidden-terminal-rich
//! scenario — detect simultaneous transmissions from the global viewpoint,
//! normalize out background loss, and estimate per-pair interference.
//!
//! ```sh
//! cargo run --release --example interference_study [-- <seed>]
//! ```

// An example's output *is* stdout; the workspace denial targets library code.
#![allow(clippy::print_stdout, clippy::print_stderr)]
use jigsaw::analysis::interference::InterferenceAnalysis;
use jigsaw::core::pipeline::{Pipeline, PipelineConfig};
use jigsaw::sim::scenario::ScenarioConfig;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    // A denser-than-default small building: more clients per AP means more
    // hidden-terminal pairs and a busier channel.
    let mut cfg = ScenarioConfig::small(seed);
    cfg.n_clients = 16;
    cfg.day_us = 60_000_000;
    cfg.microwaves = 2;
    cfg.microwave_gap_us = 10_000_000;
    let out = cfg.run();
    println!(
        "simulated {} events, {} noise bursts from microwave interferers",
        out.total_events(),
        out.stats.noise_bursts
    );

    // The analysis subscribes to both the jframe and the attempt stream
    // through its PipelineObserver hooks — one borrowed observer, no
    // interior mutability.
    let mut analysis = InterferenceAnalysis::new();
    analysis.min_packets = 50; // smaller trace, smaller bar
    Pipeline::run(
        out.memory_streams(),
        &PipelineConfig::default(),
        &mut analysis,
    )
    .expect("pipeline");

    let fig = analysis.finish();
    println!("\n{}", fig.render());
    println!("top interfered pairs:");
    for p in fig.pairs.iter().rev().take(8) {
        println!(
            "  {} -> {}: X={:.4} Pi={:.3} background={:.3} over {} transmissions",
            p.sender, p.receiver, p.x, p.pi_raw, p.background_loss, p.n
        );
    }
}
